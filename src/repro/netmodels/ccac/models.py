"""CCAC case study: AIMD over a non-deterministic Internet path (§6.2).

CCAC models Internet paths as "a path server, which is a generalized
and non-deterministic token bucket filter, followed by a fixed delay".
Following the paper, the model is decomposed into three Buffy programs
composed by connecting buffers (Figure 7):

* :data:`AIMD_SRC` — the congestion control algorithm.  One time step
  is one RTT: consume acks from ``cin1``, additively increase the
  window, detect persistent ack silence and multiplicatively decrease
  (halving computed with a bounded loop — Buffy has no division), then
  transmit up to ``cwnd - inflight`` packets from the application
  buffer ``cin0`` into ``cout0``.

* :data:`PATH_SRC` — the path server.  A havocked per-step token refill
  is constrained (``assume``) to CCAC's generalized token bucket: the
  cumulative service over any prefix stays within ``C*t ± B``.  Served
  packets are forwarded as their own acknowledgements into ``pob1``
  (payload delivery is observed via the input buffer's dequeue
  statistic — packets double as ack tokens so the language stays
  move-only; see DESIGN.md).

* :data:`DELAY_SRC` — a unit-delay stage; a fixed delay of ``D`` steps
  is ``D`` unit stages composed in series (composition's end-of-step
  flush provides exactly one step of latency per stage).

The wiring (:func:`ccac_network` / :func:`ccac_symbolic_network`):
``aimd.cout0 → path.pin0``, ``path.pob1 → delay_1.dib0``,
``delay_k.dob0 → delay_{k+1}.dib0``, ``delay_D.dob0 → aimd.cin1``.

The ack-burst loss scenario: the path server may stall (refill at the
low edge of the bucket envelope) while tokens and acks accumulate,
then release a burst; the burst of acks reaches AIMD one delay later,
AIMD dumps a full window into the path buffer, and the buffer
overflows — a packet loss that the loss query detects.
"""

from __future__ import annotations

from typing import Optional

from ...compiler.composition import (
    ConcreteNetwork,
    Connection,
    SymbolicNetwork,
)
from ...compiler.symexec import EncodeConfig
from ...lang.checker import CheckedProgram, check_program
from ...lang.parser import parse_program

AIMD_SRC = """\
aimd(in buffer cin0, in buffer cin1, out buffer cout0, out buffer sink){
  const int IW = 2;       // initial window
  const int CWND_MAX = 8; // window clamp (keeps the model bounded)
  const int ACK_CAP = 8;  // acks consumed per step bound
  const int RTO = 3;      // silent RTTs before multiplicative decrease
  global int cwnd; global int inflight;
  global bool started; global int silent;
  monitor int m_cwnd; monitor int m_acked;
  if (!started) { cwnd = IW; started = true; }
  // consume this RTT's acks
  local int acks;
  acks = backlog-p(cin1);
  move-p(cin1, sink, ACK_CAP);
  inflight = inflight - acks;
  if (inflight < 0) { inflight = 0; }
  // AIMD window update
  if (acks > 0) {
    silent = 0;
    if (cwnd < CWND_MAX) { cwnd = cwnd + 1; }
  } else {
    if (inflight > 0) { silent = silent + 1; }
  }
  if (silent >= RTO) {
    // multiplicative decrease: cwnd = max(1, cwnd / 2), division-free
    local int half;
    half = 0;
    for (i in 0..CWND_MAX) do {
      if (half + half + 2 <= cwnd) { half = half + 1; }
    }
    cwnd = half;
    if (cwnd < 1) { cwnd = 1; }
    inflight = 0;
    silent = 0;
  }
  // transmit up to the window
  local int can_send; local int before;
  can_send = cwnd - inflight;
  if (can_send < 0) { can_send = 0; }
  before = backlog-p(cin0);
  move-p(cin0, cout0, can_send);
  inflight = inflight + (before - backlog-p(cin0));
  m_cwnd = cwnd;
  m_acked = m_acked + acks;
}
"""

PATH_SRC = """\
path(in buffer pin0, out buffer pob1){
  const int RATE = 1;    // C: long-term service rate (packets per step)
  const int BURST = 2;   // B: token-bucket burst tolerance
  const int MAXR = 3;    // per-step refill cap (RATE + BURST)
  const int BUCKET = 3;  // token accumulation cap
  global int tokens; global int tick; global int trefill;
  monitor int m_served;
  tick = tick + 1;
  // CCAC's generalized token bucket: the cumulative service envelope
  // stays within C*t - B .. C*t + B, each step's refill is havocked.
  local int refill;
  havoc refill in 0..MAXR;
  trefill = trefill + refill;
  assume(trefill <= RATE * tick + BURST);
  assume(trefill >= RATE * tick - BURST);
  tokens = tokens + refill;
  if (tokens > BUCKET) { tokens = BUCKET; }
  // serve up to the available tokens; served packets double as acks
  local int before; local int served;
  before = backlog-p(pin0);
  move-p(pin0, pob1, tokens);
  served = before - backlog-p(pin0);
  tokens = tokens - served;
  m_served = m_served + served;
}
"""

DELAY_SRC = """\
delay(in buffer dib0, out buffer dob0){
  const int CAP = 8;
  move-p(dib0, dob0, CAP);
}
"""


def aimd_program() -> CheckedProgram:
    return check_program(parse_program(AIMD_SRC))


def path_program() -> CheckedProgram:
    return check_program(parse_program(PATH_SRC))


def delay_program() -> CheckedProgram:
    return check_program(parse_program(DELAY_SRC))


def _wiring(delay_steps: int) -> tuple[dict[str, CheckedProgram], list[Connection]]:
    if delay_steps < 1:
        raise ValueError("delay must be at least one step")
    programs: dict[str, CheckedProgram] = {
        "aimd": aimd_program(),
        "path": path_program(),
    }
    connections = [
        Connection("aimd", "cout0", "path", "pin0"),
    ]
    prev = ("path", "pob1")
    for k in range(delay_steps):
        name = f"delay{k}"
        programs[name] = delay_program()
        connections.append(Connection(prev[0], prev[1], name, "dib0"))
        prev = (name, "dob0")
    connections.append(Connection(prev[0], prev[1], "aimd", "cin1"))
    return programs, connections


def ccac_network(delay_steps: int = 1) -> ConcreteNetwork:
    """The composed concrete (simulation) network of Figure 7."""
    programs, connections = _wiring(delay_steps)
    return ConcreteNetwork(programs, connections)


def ccac_symbolic_network(
    delay_steps: int = 1,
    path_capacity: int = 4,
    config: Optional[EncodeConfig] = None,
) -> tuple[dict[str, CheckedProgram], list[Connection], dict[str, EncodeConfig]]:
    """Programs, wiring and per-program configs for symbolic analysis.

    ``path_capacity`` is the bottleneck buffer size — the loss query
    asks whether ``path.pin0`` can overflow it.
    """
    programs, connections = _wiring(delay_steps)
    base = config or EncodeConfig(
        buffer_capacity=8,
        arrivals_per_step=4,
        havoc_default=(0, 4),
    )
    configs = {name: base for name in programs}
    path_cfg = EncodeConfig(
        buffer_capacity=path_capacity,
        arrivals_per_step=base.arrivals_per_step,
        havoc_default=base.havoc_default,
        buffer_model=base.buffer_model,
        packet_size=base.packet_size,
        max_size=base.max_size,
    )
    configs["path"] = path_cfg
    return programs, connections, configs
