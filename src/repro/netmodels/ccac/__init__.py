"""CCAC case study: AIMD over a non-deterministic Internet path (§6.2)."""

from .models import (
    AIMD_SRC,
    DELAY_SRC,
    PATH_SRC,
    aimd_program,
    ccac_network,
    ccac_symbolic_network,
    delay_program,
    path_program,
)

__all__ = [
    "AIMD_SRC", "DELAY_SRC", "PATH_SRC", "aimd_program", "ccac_network",
    "ccac_symbolic_network", "delay_program", "path_program",
]
