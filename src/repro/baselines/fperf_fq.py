"""FPerf-style encoding of the buggy fair-queuing scheduler (Figure 1).

This file hand-constructs the SMT formulas for the FQ scheduler's
per-step logic exactly the way FPerf does (see the paper's Figure 1
and the fperf repository's ``buggy_2l_rr_qm.cpp``): explicit variables
for every pointer-list slot at every sub-step, and implications
enumerating every distinct scenario — list pushes, list pops, head
selection, queue demotion and the dequeue decision are each written
out slot by slot and case by case.

Compare with the 18-line Buffy program in
``repro/netmodels/schedulers.py``; the line counts of the two
artifacts are what ``benchmarks/bench_table1_loc.py`` reports for
Table 1.
"""

from __future__ import annotations

from ..smt.terms import (
    FALSE,
    ZERO,
    Term,
    mk_and,
    mk_eq,
    mk_iff,
    mk_implies,
    mk_int,
    mk_ite,
    mk_lt,
    mk_not,
    mk_or,
)
from .common import BaselineContext


def encode_fq_baseline(
    n_queues: int = 2,
    horizon: int = 6,
    capacity: int = 6,
    max_arrivals: int = 2,
) -> BaselineContext:
    """Build the full FPerf-style constraint system for buggy FQ."""
    ctx = BaselineContext(
        n_queues=n_queues,
        horizon=horizon,
        capacity=capacity,
        max_arrivals=max_arrivals,
        name="fqbl",
    )
    n = n_queues

    # The two pointer lists persist across time steps.  Each list is a
    # bank of slot variables (queue ids, -1 = empty) plus a length.
    nq_e = [ctx.fresh_int(f"nq_init_e{i}", -1, n - 1) for i in range(n)]
    nq_len = ctx.fresh_int("nq_init_len", 0, n)
    oq_e = [ctx.fresh_int(f"oq_init_e{i}", -1, n - 1) for i in range(n)]
    oq_len = ctx.fresh_int("oq_init_len", 0, n)
    ctx.add(mk_eq(nq_len, ZERO))
    ctx.add(mk_eq(oq_len, ZERO))
    for i in range(n):
        ctx.add(mk_eq(nq_e[i], mk_int(-1)))
        ctx.add(mk_eq(oq_e[i], mk_int(-1)))

    for t in range(horizon):
        # =====================================================================
        # Phase 1: activate newly backlogged queues into new_queues.
        # One push-if per queue id; every push is a fresh copy of all
        # slot variables related to the previous copy by implications.
        # =====================================================================
        for i in range(n):
            qi_not_empty = mk_lt(ZERO, ctx.cnt_mid[i][t])
            in_nq = mk_or(*[
                mk_and(mk_lt(mk_int(k), nq_len), mk_eq(nq_e[k], mk_int(i)))
                for k in range(n)
            ])
            in_oq = mk_or(*[
                mk_and(mk_lt(mk_int(k), oq_len), mk_eq(oq_e[k], mk_int(i)))
                for k in range(n)
            ])
            activate = mk_and(qi_not_empty, mk_not(in_nq), mk_not(in_oq))
            do_push = mk_and(activate, mk_lt(nq_len, mk_int(n)))
            new_e = [ctx.fresh_int(f"nq_t{t}_act{i}_e{k}", -1, n - 1)
                     for k in range(n)]
            new_len = ctx.fresh_int(f"nq_t{t}_act{i}_len", 0, n)
            ctx.add(mk_implies(do_push, mk_eq(new_len, nq_len + mk_int(1))))
            ctx.add(mk_implies(mk_not(do_push), mk_eq(new_len, nq_len)))
            for k in range(n):
                at_tail = mk_and(do_push, mk_eq(nq_len, mk_int(k)))
                ctx.add(mk_implies(at_tail, mk_eq(new_e[k], mk_int(i))))
                ctx.add(mk_implies(mk_not(at_tail), mk_eq(new_e[k], nq_e[k])))
            nq_e, nq_len = new_e, new_len

        # =====================================================================
        # Phase 2: the selection loop — up to n pop attempts per step.
        # =====================================================================
        dequeued: Term = FALSE
        send_conds: list[tuple[Term, Term]] = []
        for j in range(n):
            not_done = mk_not(dequeued)
            nq_nonempty = mk_lt(ZERO, nq_len)
            oq_nonempty = mk_lt(ZERO, oq_len)

            # ---- pop the head of new_queues when it is non-empty ----
            pop_nq = mk_and(not_done, nq_nonempty)
            head_nq = ctx.fresh_int(f"t{t}_s{j}_headnq", -1, n - 1)
            ctx.add(mk_implies(pop_nq, mk_eq(head_nq, nq_e[0])))
            ctx.add(mk_implies(mk_not(pop_nq), mk_eq(head_nq, mk_int(-1))))
            new_nq_e = [ctx.fresh_int(f"nq_t{t}_s{j}_e{k}", -1, n - 1)
                        for k in range(n)]
            new_nq_len = ctx.fresh_int(f"nq_t{t}_s{j}_len", 0, n)
            ctx.add(mk_implies(pop_nq,
                               mk_eq(new_nq_len, nq_len - mk_int(1))))
            ctx.add(mk_implies(mk_not(pop_nq), mk_eq(new_nq_len, nq_len)))
            for k in range(n - 1):
                ctx.add(mk_implies(pop_nq, mk_eq(new_nq_e[k], nq_e[k + 1])))
                ctx.add(mk_implies(mk_not(pop_nq),
                                   mk_eq(new_nq_e[k], nq_e[k])))
            ctx.add(mk_implies(pop_nq, mk_eq(new_nq_e[n - 1], mk_int(-1))))
            ctx.add(mk_implies(mk_not(pop_nq),
                               mk_eq(new_nq_e[n - 1], nq_e[n - 1])))
            nq_e, nq_len = new_nq_e, new_nq_len

            # ---- otherwise pop the head of old_queues ----
            pop_oq = mk_and(not_done, mk_not(pop_nq), oq_nonempty)
            head_oq = ctx.fresh_int(f"t{t}_s{j}_headoq", -1, n - 1)
            ctx.add(mk_implies(pop_oq, mk_eq(head_oq, oq_e[0])))
            ctx.add(mk_implies(mk_not(pop_oq), mk_eq(head_oq, mk_int(-1))))
            new_oq_e = [ctx.fresh_int(f"oq_t{t}_s{j}_e{k}", -1, n - 1)
                        for k in range(n)]
            new_oq_len = ctx.fresh_int(f"oq_t{t}_s{j}_len", 0, n)
            ctx.add(mk_implies(pop_oq,
                               mk_eq(new_oq_len, oq_len - mk_int(1))))
            ctx.add(mk_implies(mk_not(pop_oq), mk_eq(new_oq_len, oq_len)))
            for k in range(n - 1):
                ctx.add(mk_implies(pop_oq, mk_eq(new_oq_e[k], oq_e[k + 1])))
                ctx.add(mk_implies(mk_not(pop_oq),
                                   mk_eq(new_oq_e[k], oq_e[k])))
            ctx.add(mk_implies(pop_oq, mk_eq(new_oq_e[n - 1], mk_int(-1))))
            ctx.add(mk_implies(mk_not(pop_oq),
                               mk_eq(new_oq_e[n - 1], oq_e[n - 1])))
            oq_e, oq_len = new_oq_e, new_oq_len

            # ---- head selection and its backlog, by per-value cases ----
            head = mk_ite(pop_nq, head_nq,
                          mk_ite(pop_oq, head_oq, mk_int(-1)))
            got_head = mk_not(mk_eq(head, mk_int(-1)))
            sel_cnt = ZERO
            for q in range(n):
                sel_cnt = mk_ite(mk_eq(head, mk_int(q)),
                                 ctx.cnt_mid[q][t], sel_cnt)

            # ---- demotion (the buggy rule): only queues with more than
            # one remaining packet go to old_queues; an emptying queue is
            # silently deactivated and re-enters new_queues on its next
            # packet — the starvation bug the RFC warns about. ----
            demote = mk_and(not_done, got_head, mk_lt(mk_int(1), sel_cnt))
            do_dem = mk_and(demote, mk_lt(oq_len, mk_int(n)))
            dem_e = [ctx.fresh_int(f"oq_t{t}_s{j}_dem_e{k}", -1, n - 1)
                     for k in range(n)]
            dem_len = ctx.fresh_int(f"oq_t{t}_s{j}_dem_len", 0, n)
            ctx.add(mk_implies(do_dem, mk_eq(dem_len, oq_len + mk_int(1))))
            ctx.add(mk_implies(mk_not(do_dem), mk_eq(dem_len, oq_len)))
            for k in range(n):
                at_tail = mk_and(do_dem, mk_eq(oq_len, mk_int(k)))
                ctx.add(mk_implies(at_tail, mk_eq(dem_e[k], head)))
                ctx.add(mk_implies(mk_not(at_tail),
                                   mk_eq(dem_e[k], oq_e[k])))
            oq_e, oq_len = dem_e, dem_len

            # ---- the transmit decision for this sub-iteration ----
            send = mk_and(not_done, got_head, mk_lt(ZERO, sel_cnt))
            send_conds.append((send, head))
            dequeued = mk_or(dequeued, send)

        # =====================================================================
        # Phase 3: tie the dequeue decision variables to the logic.
        # =====================================================================
        for q in range(n):
            fired = mk_or(*[
                mk_and(send, mk_eq(head, mk_int(q)))
                for send, head in send_conds
            ])
            ctx.add(mk_iff(ctx.deq[q][t], fired))

    return ctx
