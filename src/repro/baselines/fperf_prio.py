"""FPerf-style encoding of the strict-priority scheduler.

The smallest of the three baseline encodings (Table 1): queue ``q``
transmits iff it is backlogged and all higher-priority queues are not.
"""

from __future__ import annotations

from ..smt.terms import ZERO, mk_and, mk_eq, mk_iff, mk_lt, mk_not

from .common import BaselineContext


def encode_prio_baseline(
    n_queues: int = 2,
    horizon: int = 6,
    capacity: int = 6,
    max_arrivals: int = 2,
) -> BaselineContext:
    """Build the FPerf-style constraint system for strict priority."""
    ctx = BaselineContext(
        n_queues=n_queues,
        horizon=horizon,
        capacity=capacity,
        max_arrivals=max_arrivals,
        name="spbl",
    )
    for t in range(ctx.horizon):
        for q in range(ctx.n_queues):
            higher_empty = [
                mk_eq(ctx.cnt_mid[p][t], ZERO) for p in range(q)
            ]
            fires = mk_and(
                mk_lt(ZERO, ctx.cnt_mid[q][t]), *higher_empty
            )
            ctx.add(mk_iff(ctx.deq[q][t], fires))
    return ctx
