"""Scheduler-agnostic machinery for the FPerf-style baseline encodings.

§2.2 of the paper: "there are 100s of lines of code creating additional
scheduler-agnostic constraints that model the internal operations of
the packet queues and lists".  This module is our equivalent of that
layer: explicit per-time-step variables for queue occupancy, arrivals,
dequeue decisions and pointer-list slots, with hand-written transition
constraints — the "before" picture that Buffy's language abstractions
replace.

The per-scheduler logic lives in ``fperf_fq.py`` / ``fperf_rr.py`` /
``fperf_prio.py``; their line counts are the FPerf column of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..smt.solver import SmtSolver
from ..smt.terms import (
    FALSE,
    TRUE,
    ZERO,
    Term,
    mk_and,
    mk_bool_to_int,
    mk_bool_var,
    mk_eq,
    mk_implies,
    mk_int,
    mk_int_var,
    mk_ite,
    mk_le,
    mk_lt,
    mk_min,
    mk_not,
    mk_or,
    mk_sum,
)


@dataclass
class BaselineContext:
    """Shared state for one baseline encoding instance.

    Creates the scheduler-agnostic variables and constraints:

    * ``arr[q][t]``        — arrival count for queue ``q`` at step ``t``;
    * ``cnt[q][t]``        — queue occupancy at the *start* of step ``t``;
    * ``cnt_mid[q][t]``    — occupancy after the arrival flush;
    * ``deq[q][t]``        — does queue ``q`` transmit at step ``t``;
    * ``cdeq[q][t]``       — cumulative dequeues of ``q`` through ``t``.

    The scheduler-specific encoding must constrain ``deq`` and may add
    whatever internal state it needs (e.g. pointer lists).
    """

    n_queues: int
    horizon: int
    capacity: int = 8
    max_arrivals: int = 2
    name: str = "baseline"
    constraints: list[Term] = field(default_factory=list)
    bounds: dict[str, tuple[int, int]] = field(default_factory=dict)
    _fresh: int = 0

    def __post_init__(self) -> None:
        n, T = self.n_queues, self.horizon
        self.arr = [[self._int(f"arr_q{q}_t{t}", 0, self.max_arrivals)
                     for t in range(T)] for q in range(n)]
        self.cnt = [[self._int(f"cnt_q{q}_t{t}", 0, self.capacity)
                     for t in range(T + 1)] for q in range(n)]
        self.cnt_mid = [[self._int(f"cntmid_q{q}_t{t}", 0, self.capacity)
                         for t in range(T)] for q in range(n)]
        self.deq = [[mk_bool_var(f"{self.name}_deq_q{q}_t{t}")
                     for t in range(T)] for q in range(n)]
        self.cdeq = [[self._int(f"cdeq_q{q}_t{t}", 0, T)
                      for t in range(T + 1)] for q in range(n)]
        self.drops = [[self._int(f"drop_q{q}_t{t}", 0, self.max_arrivals)
                       for t in range(T)] for q in range(n)]
        self._agnostic_constraints()

    # ----- variable helpers -------------------------------------------------

    def _int(self, suffix: str, lo: int, hi: int) -> Term:
        var = mk_int_var(f"{self.name}_{suffix}")
        self.bounds[var.name] = (lo, hi)
        return var

    def fresh_int(self, tag: str, lo: int, hi: int) -> Term:
        self._fresh += 1
        return self._int(f"{tag}_f{self._fresh}", lo, hi)

    def fresh_bool(self, tag: str) -> Term:
        self._fresh += 1
        return mk_bool_var(f"{self.name}_{tag}_f{self._fresh}")

    def add(self, constraint: Term) -> None:
        self.constraints.append(constraint)

    # ----- scheduler-agnostic transition constraints ------------------------------

    def _agnostic_constraints(self) -> None:
        n, T = self.n_queues, self.horizon
        for q in range(n):
            self.add(mk_eq(self.cnt[q][0], ZERO))
            self.add(mk_eq(self.cdeq[q][0], ZERO))
            for t in range(T):
                # Arrival flush with tail drop at capacity.
                admitted = mk_min(
                    self.arr[q][t],
                    mk_int(self.capacity) - self.cnt[q][t],
                )
                self.add(
                    mk_eq(self.cnt_mid[q][t], self.cnt[q][t] + admitted)
                )
                self.add(
                    mk_eq(self.drops[q][t], self.arr[q][t] - admitted)
                )
                # A queue can transmit only when it has a packet.
                self.add(
                    mk_implies(
                        self.deq[q][t], mk_lt(ZERO, self.cnt_mid[q][t])
                    )
                )
                took = mk_bool_to_int(self.deq[q][t])
                self.add(
                    mk_eq(self.cnt[q][t + 1], self.cnt_mid[q][t] - took)
                )
                self.add(
                    mk_eq(self.cdeq[q][t + 1], self.cdeq[q][t] + took)
                )
            # At most one queue transmits per step (single output link).
        for t in range(T):
            for q1 in range(n):
                for q2 in range(q1 + 1, n):
                    self.add(
                        mk_not(mk_and(self.deq[q1][t], self.deq[q2][t]))
                    )

    # ----- solving -----------------------------------------------------------------

    def solver(self) -> SmtSolver:
        solver = SmtSolver()
        for name, (lo, hi) in self.bounds.items():
            solver.set_bounds(name, lo, hi)
        for constraint in self.constraints:
            solver.add(constraint)
        return solver

    def total_deq(self, q: int, t: Optional[int] = None) -> Term:
        return self.cdeq[q][self.horizon if t is None else t]


class BaselineList:
    """A pointer list encoded FPerf-style: one variable per slot per step.

    Slot variables hold queue ids, ``-1`` marks empty; ``length``
    tracks occupancy.  Every mutation is a fresh copy of all slot
    variables related to the previous copy by hand-written
    implications — exactly the Figure-1 style of modeling.
    """

    def __init__(self, ctx: BaselineContext, name: str, capacity: int,
                 max_value: int):
        self.ctx = ctx
        self.name = name
        self.capacity = capacity
        self.max_value = max_value
        self.elems = [
            ctx.fresh_int(f"{name}_e{i}", -1, max_value)
            for i in range(capacity)
        ]
        self.length = ctx.fresh_int(f"{name}_len", 0, capacity)
        ctx.add(mk_eq(self.length, ZERO))
        for elem in self.elems:
            ctx.add(mk_eq(elem, mk_int(-1)))

    def _next(self, tag: str) -> "BaselineList":
        clone = object.__new__(BaselineList)
        clone.ctx = self.ctx
        clone.name = self.name
        clone.capacity = self.capacity
        clone.max_value = self.max_value
        clone.elems = [
            self.ctx.fresh_int(f"{self.name}_{tag}_e{i}", -1, self.max_value)
            for i in range(self.capacity)
        ]
        clone.length = self.ctx.fresh_int(f"{self.name}_{tag}_len",
                                          0, self.capacity)
        return clone

    def has(self, value: Term) -> Term:
        hits = [
            mk_and(mk_lt(mk_int(i), self.length), mk_eq(self.elems[i], value))
            for i in range(self.capacity)
        ]
        return mk_or(*hits)

    def empty(self) -> Term:
        return mk_eq(self.length, ZERO)

    def head(self) -> Term:
        return mk_ite(self.empty(), mk_int(-1), self.elems[0])

    def push_if(self, cond: Term, value: Term, tag: str) -> "BaselineList":
        """New list state: ``value`` appended when ``cond`` (and room)."""
        ctx = self.ctx
        nxt = self._next(tag)
        do = mk_and(cond, mk_lt(self.length, mk_int(self.capacity)))
        ctx.add(mk_implies(do, mk_eq(nxt.length, self.length + mk_int(1))))
        ctx.add(mk_implies(mk_not(do), mk_eq(nxt.length, self.length)))
        for i in range(self.capacity):
            at = mk_and(do, mk_eq(self.length, mk_int(i)))
            ctx.add(mk_implies(at, mk_eq(nxt.elems[i], value)))
            ctx.add(mk_implies(mk_not(at), mk_eq(nxt.elems[i], self.elems[i])))
        return nxt

    def pop_if(self, cond: Term, tag: str) -> tuple["BaselineList", Term]:
        """New list state and popped value (-1 when empty or not popped)."""
        ctx = self.ctx
        nxt = self._next(tag)
        do = mk_and(cond, mk_lt(ZERO, self.length))
        value = ctx.fresh_int(f"{self.name}_{tag}_pop", -1, self.max_value)
        ctx.add(mk_implies(do, mk_eq(value, self.elems[0])))
        ctx.add(mk_implies(mk_not(do), mk_eq(value, mk_int(-1))))
        ctx.add(mk_implies(do, mk_eq(nxt.length, self.length - mk_int(1))))
        ctx.add(mk_implies(mk_not(do), mk_eq(nxt.length, self.length)))
        for i in range(self.capacity - 1):
            ctx.add(mk_implies(do, mk_eq(nxt.elems[i], self.elems[i + 1])))
            ctx.add(
                mk_implies(mk_not(do), mk_eq(nxt.elems[i], self.elems[i]))
            )
        last = self.capacity - 1
        ctx.add(mk_implies(do, mk_eq(nxt.elems[last], mk_int(-1))))
        ctx.add(
            mk_implies(mk_not(do), mk_eq(nxt.elems[last], self.elems[last]))
        )
        return nxt, value
