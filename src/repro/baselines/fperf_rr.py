"""FPerf-style encoding of the round-robin scheduler.

Hand-written per-step formulas for the round-robin pointer scan:
explicit pointer variables per sub-step and per-value case splits.
Compare with the 10-line Buffy program (Table 1).
"""

from __future__ import annotations

from ..smt.terms import (
    FALSE,
    ZERO,
    Term,
    mk_and,
    mk_eq,
    mk_iff,
    mk_implies,
    mk_int,
    mk_ite,
    mk_lt,
    mk_not,
    mk_or,
)
from .common import BaselineContext


def encode_rr_baseline(
    n_queues: int = 2,
    horizon: int = 6,
    capacity: int = 6,
    max_arrivals: int = 2,
) -> BaselineContext:
    """Build the FPerf-style constraint system for round robin."""
    ctx = BaselineContext(
        n_queues=n_queues,
        horizon=horizon,
        capacity=capacity,
        max_arrivals=max_arrivals,
        name="rrbl",
    )
    n = n_queues
    # The persistent next-queue pointer, one variable per time step.
    nxt = [ctx.fresh_int(f"nxt_t{t}", 0, n - 1) for t in range(horizon + 1)]
    ctx.add(mk_eq(nxt[0], ZERO))

    for t in range(horizon):
        dequeued: Term = FALSE
        ptr = nxt[t]
        send_conds: list[tuple[Term, Term]] = []
        for j in range(n):
            not_done = mk_not(dequeued)
            # Does the queue under the pointer have traffic?  Enumerate
            # every possible pointer value explicitly.
            ptr_cnt = ZERO
            for q in range(n):
                ptr_cnt = mk_ite(mk_eq(ptr, mk_int(q)),
                                 ctx.cnt_mid[q][t], ptr_cnt)
            send = mk_and(not_done, mk_lt(ZERO, ptr_cnt))
            send_conds.append((send, ptr))
            dequeued = mk_or(dequeued, send)
            # Advance the pointer (with wraparound) when nothing was sent.
            advance = mk_not(dequeued)
            stepped = ctx.fresh_int(f"ptr_t{t}_s{j}", 0, n - 1)
            wrapped = mk_ite(
                mk_eq(ptr, mk_int(n - 1)), ZERO, ptr + mk_int(1)
            )
            ctx.add(mk_implies(advance, mk_eq(stepped, wrapped)))
            ctx.add(mk_implies(mk_not(advance), mk_eq(stepped, ptr)))
            ptr = stepped
        # After a send, the pointer moves one past the served queue.
        final = ctx.fresh_int(f"ptr_t{t}_fin", 0, n - 1)
        served_wrap = mk_ite(
            mk_eq(ptr, mk_int(n - 1)), ZERO, ptr + mk_int(1)
        )
        ctx.add(mk_implies(dequeued, mk_eq(final, served_wrap)))
        ctx.add(mk_implies(mk_not(dequeued), mk_eq(final, ptr)))
        ctx.add(mk_eq(nxt[t + 1], final))
        for q in range(n):
            fired = mk_or(
                *[mk_and(send, mk_eq(p, mk_int(q))) for send, p in send_conds]
            )
            ctx.add(mk_iff(ctx.deq[q][t], fired))

    return ctx
