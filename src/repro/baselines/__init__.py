"""Hand-written FPerf-style encodings (the Table-1 'before' picture)."""

from .common import BaselineContext, BaselineList
from .fperf_fq import encode_fq_baseline
from .fperf_prio import encode_prio_baseline
from .fperf_rr import encode_rr_baseline

__all__ = [
    "BaselineContext", "BaselineList", "encode_fq_baseline",
    "encode_prio_baseline", "encode_rr_baseline",
]
