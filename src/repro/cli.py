"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``check FILE``      — parse and type-check a Buffy program;
* ``pretty FILE``     — parse and pretty-print (format) a program;
* ``run FILE``        — simulate with a random workload, print stats;
* ``verify FILE``     — check in-program asserts over a bounded horizon;
* ``analyze FILE``    — run any back end through :func:`repro.analyze`;
* ``smtlib FILE``     — dump the compiled encoding as SMT-LIB v2;
* ``stats TRACE``     — summarize a previously emitted trace file;
* ``batch ...``       — durable batch analysis over a journal directory
  (``submit`` / ``run`` / ``resume`` / ``status``): jobs survive
  SIGKILL and resume exactly where the journal left off;
* ``top TARGET``      — live job/solver introspection against a running
  ``repro serve`` (``HOST:PORT``) or a spool directory, refreshing in
  place (``--once`` for one frame);
* ``loc``             — print the Table-1 LoC comparison.

Named constants for ``buffer[N]``-style sizes are passed with
``-D N=3`` (repeatable).

Observability: ``verify`` and ``analyze`` accept ``--trace FILE``
(Chrome trace-event JSON, loadable in Perfetto) and ``--metrics
[FILE]`` (Prometheus text; omit FILE to print to stdout).  Either flag
turns telemetry on for the run — including metric/span deltas merged
back from ``--jobs N`` worker processes.

Exit codes for ``verify`` and ``analyze`` derive from
:class:`repro.analysis.result.Verdict` (the one place they are
defined): 0 — all asserts proved; 1 — a counterexample was found; 2 —
undecided (e.g. an injected fault); 3 — the resource budget was
exhausted (``--timeout``); 4 — usage/input errors; 5 — an answer was
produced but failed certification (``--certify``: an UNSAT/VERIFIED
claim whose DRAT certificate did not check is never reported as
proved); 6 — a ``batch run``/``resume`` finished with deadlettered
jobs (retry budget exhausted or a permanent per-job error).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .analysis.result import BUDGET_REASONS, EXIT_ERROR, Verdict
from .analysis.workloads import random_workload
from .backends.smt_backend import SmtBackend, Status
from .compiler.symexec import EncodeConfig
from .lang.ast import BuffyError
from .lang.checker import check_program
from .lang.interp import Interpreter
from .lang.parser import parse_program
from .lang.pretty import pretty_program
from .runtime.budget import Budget

# Back-compat aliases: the canonical mapping lives on Verdict.exit_code.
EXIT_PROVED = Verdict.PROVED.exit_code
EXIT_VIOLATED = Verdict.VIOLATED.exit_code
EXIT_UNKNOWN = Verdict.UNDECIDED.exit_code
EXIT_BUDGET = Verdict.EXHAUSTED.exit_code


def _parse_defines(defines: Sequence[str]) -> dict[str, int]:
    consts: dict[str, int] = {}
    for item in defines:
        name, _, value = item.partition("=")
        if not value:
            raise SystemExit(f"bad -D option {item!r}; expected NAME=INT")
        consts[name] = int(value)
    return consts


def _load(path: str, defines: Sequence[str]):
    with open(path) as handle:
        source = handle.read()
    return check_program(parse_program(source, consts=_parse_defines(defines)))


def _config(args) -> EncodeConfig:
    return EncodeConfig(
        buffer_capacity=args.capacity,
        arrivals_per_step=args.arrivals,
    )


def _telemetry_wanted(args) -> bool:
    return (getattr(args, "trace", None) is not None
            or getattr(args, "trace_jsonl", None) is not None
            or getattr(args, "metrics", None) is not None)


def _export_telemetry(snapshot, args) -> None:
    """Write the artifacts ``--trace``/``--metrics`` asked for.

    Exporter writes are crash-safe and degrade I/O failure to a False
    return (the analysis verdict is already decided; telemetry must not
    change the exit code) — surfaced here as a warning.
    """
    if snapshot is None:
        return
    if getattr(args, "trace", None):
        if snapshot.write_chrome_trace(args.trace):
            print(f"trace: wrote {args.trace} ({len(snapshot.spans)} spans;"
                  " open in https://ui.perfetto.dev)", file=sys.stderr)
        else:
            print(f"warning: could not write trace to {args.trace}",
                  file=sys.stderr)
    jsonl = getattr(args, "trace_jsonl", None)
    if jsonl:
        if snapshot.write_jsonl(jsonl):
            print(f"trace: wrote {jsonl} ({len(snapshot.spans)} spans,"
                  " one JSON object per line)", file=sys.stderr)
        else:
            print(f"warning: could not write trace to {jsonl}",
                  file=sys.stderr)
    metrics = getattr(args, "metrics", None)
    if metrics == "-":
        print(snapshot.to_prometheus(), end="")
    elif metrics:
        if snapshot.write_prometheus(metrics):
            print(f"metrics: wrote {metrics}", file=sys.stderr)
        else:
            print(f"warning: could not write metrics to {metrics}",
                  file=sys.stderr)


def cmd_check(args) -> int:
    checked = _load(args.file, args.define)
    params = ", ".join(
        f"{p.kind.value} {p.name}" for p in checked.program.params
    )
    print(f"{checked.name}: OK ({params})")
    if checked.monitors:
        print(f"  monitors: {', '.join(checked.monitors)}")
    return 0


def cmd_pretty(args) -> int:
    checked = _load(args.file, args.define)
    print(pretty_program(checked.program), end="")
    return 0


def cmd_run(args) -> int:
    checked = _load(args.file, args.define)
    interp = Interpreter(checked, buffer_capacity=args.capacity)
    machine_labels = [
        f"{p.name}[{i}]" if p.count > 1 else p.name
        for p in checked.program.input_params()
        for i in range(p.count)
    ]
    workload = random_workload(
        machine_labels, args.horizon, args.arrivals, seed=args.seed
    )
    trace = interp.run(workload)
    print(f"simulated {args.horizon} steps of {checked.name}")
    for label in machine_labels:
        if "[" in label:
            name, _, rest = label.partition("[")
            buf = interp.buffer(name, int(rest[:-1]))
        else:
            buf = interp.buffer(label)
        stats = buf.stats
        print(f"  {label}: enq={stats.enqueued_packets}"
              f" deq={stats.dequeued_packets}"
              f" drop={stats.dropped_packets}"
              f" backlog={buf.backlog_p()}")
    if trace.violations:
        for violation in trace.violations:
            print(f"  ASSERT VIOLATION: {violation}")
        return 1
    return 0


# Deprecated alias; the canonical set lives in repro.analysis.result.
_BUDGET_REASONS = BUDGET_REASONS


def _budget_from(args):
    if args.timeout is None:
        return None
    if args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        raise SystemExit(EXIT_ERROR)
    return Budget(deadline_seconds=args.timeout)


def _sat_config(args):
    """Build a CDCLConfig from repeated ``--solver-opt key=value`` flags.

    ``--solver-opt help`` lists the available knobs and exits.  Parse
    or coercion errors exit with EXIT_ERROR (the verdict codes 0-6 are
    reserved for analysis results).
    """
    opts = getattr(args, "solver_opt", None)
    if not opts:
        return None
    from .smt.sat.cdcl import CDCL_OPTION_HELP, CDCLConfig

    mapping = {}
    for item in opts:
        if item in ("help", "list"):
            width = max(len(n) for n in CDCL_OPTION_HELP)
            for name, text in sorted(CDCL_OPTION_HELP.items()):
                print(f"  {name:<{width}}  {text}")
            raise SystemExit(0)
        if "=" not in item:
            print(f"error: --solver-opt expects key=value, got {item!r}"
                  " (try --solver-opt help)", file=sys.stderr)
            raise SystemExit(EXIT_ERROR)
        key, value = item.split("=", 1)
        mapping[key] = value
    try:
        return CDCLConfig.from_options(mapping)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(EXIT_ERROR)


def cmd_verify(args) -> int:
    snapshot = None
    wanted = _telemetry_wanted(args)
    if wanted:
        from . import obs

        obs.reset()
        obs.enable()
    try:
        sat_config = _sat_config(args)  # before load: --solver-opt help exits
        checked = _load(args.file, args.define)
        backend = SmtBackend(
            checked, steps=args.horizon, config=_config(args),
            sat_config=sat_config,
            budget=_budget_from(args), jobs=args.jobs,
            certify=args.certify or None,
        )
        result = backend.check_assertions()
    finally:
        if wanted:
            from . import obs

            obs.disable()
            snapshot = obs.capture()
    print(f"{checked.name}: {result.status.value}"
          f" (T={args.horizon}, {result.elapsed_seconds:.2f}s)")
    if result.status is Status.VIOLATED:
        print(result.counterexample.describe())
    elif result.resource_report is not None:
        print(result.resource_report.describe())
    _export_telemetry(snapshot, args)
    # The exit code derives from the Verdict in exactly one place.
    return result.outcome().exit_code


def cmd_analyze(args) -> int:
    from .analysis.facade import analyze

    solver_config = _sat_config(args)  # before I/O: --solver-opt help exits
    with open(args.file) as handle:
        source = handle.read()
    outcome = analyze(
        source,
        backend=args.backend,
        steps=args.horizon,
        budget=_budget_from(args),
        jobs=args.jobs,
        config=_config(args),
        solver_config=solver_config,
        consts=_parse_defines(args.define),
        prove=args.prove,
        certify=args.certify or None,
        telemetry=_telemetry_wanted(args),
    )
    print(outcome.describe())
    _export_telemetry(outcome.telemetry, args)
    return outcome.exit_code


def _batch_runner(args):
    from .persist.batch import BatchRunner

    return BatchRunner(
        args.dir, max_attempts=getattr(args, "max_attempts", 3),
    )


def cmd_batch_submit(args) -> int:
    sources = []
    for path in args.files:
        with open(path) as handle:
            sources.append((path, handle.read()))
    with _batch_runner(args) as runner:
        ids = runner.submit(
            sources,
            backend=args.backend,
            steps=args.horizon,
            consts=_parse_defines(args.define),
            prove=args.prove,
            options={"capacity": args.capacity, "arrivals": args.arrivals},
        )
    print(f"submitted {len(ids)} job(s) to {args.dir}")
    for path, job_id in zip(args.files, ids):
        print(f"  {job_id[:12]}  {path}")
    return 0


def _batch_chaos():
    """Env-driven chaos for CI smoke jobs: ``REPRO_CHAOS_IO_ERROR``,
    ``REPRO_CHAOS_SLOW_CLIENT``, ``REPRO_CHAOS_REQUEST_KILL`` (each a
    per-call probability) with optional ``REPRO_CHAOS_SEED``; a no-op
    when every rate is unset.  (The worker-crash hook stays separate,
    env-driven inside the portfolio pool.)"""
    from .runtime.chaos import chaos_from_env

    return chaos_from_env()


def cmd_batch_run(args) -> int:
    with _batch_chaos(), _batch_runner(args) as runner:
        try:
            report = runner.run(
                resume=args.resume,
                timeout=args.timeout,
                jobs=args.jobs,
                certify=args.certify or None,
            )
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
    print(report.describe())
    return report.exit_code


def cmd_batch_status(args) -> int:
    with _batch_runner(args) as runner:
        report = runner.status()
    if getattr(args, "json", False):
        import json

        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0
    print(report.describe())
    if report.recovered:
        print(f"  note: {report.recovered} job(s) look interrupted;"
              " `repro batch resume` will requeue them")
    return 0


def cmd_chaos_run(args) -> int:
    """Run a deterministic chaos campaign; exit 0 only if the
    durability auditor is green on every episode."""
    from pathlib import Path

    from .chaos import CampaignConfig, run_campaign

    kinds = None
    if args.kinds:
        kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    config = CampaignConfig(
        scenario=args.scenario,
        episodes=args.episodes,
        seed=args.seed,
        bundle_dir=Path(args.bundle_dir) if args.bundle_dir else None,
        workdir=Path(args.workdir) if args.workdir else None,
        kinds=kinds,
        fail_fast=args.fail_fast,
    )
    echo = (lambda line: None) if args.json else print
    report = run_campaign(config, echo=echo)
    if args.json:
        import json

        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 0 if report.green else 1


def cmd_chaos_replay(args) -> int:
    """Re-execute a failing episode's repro bundle: offline re-audit
    of the bundled journals, then a live re-run under the bundled
    fault schedule."""
    from pathlib import Path

    from .chaos import replay_bundle

    try:
        result = replay_bundle(
            Path(args.bundle),
            workdir=Path(args.workdir) if args.workdir else None)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: not a readable bundle: {exc!r}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        import json

        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        schedule = ",".join(f"{k}@{i}" for k, i in result["schedule"])
        print(f"replay [{result['scenario']}] schedule [{schedule}]")
        offline = result["offline_violations"]
        live = result["live_violations"]
        print(f"  offline re-audit: "
              f"{len(offline)} violation(s)"
              + "".join(f"\n    {v['invariant']}: {v['detail']}"
                        for v in offline))
        print(f"  live re-run: {len(live)} violation(s)"
              + "".join(f"\n    {v['invariant']}: {v['detail']}"
                        for v in live))
    return 1 if result["reproduced"] else 0


def cmd_serve(args) -> int:
    """Run the analysis service until SIGTERM/SIGINT, then drain."""
    import asyncio

    from .serve import AnalysisService, ReproServer, ServeConfig

    if args.route:
        return _cmd_serve_router(args)
    # Point the CDCL checkpoint store into the spool (unless the
    # operator chose one), so drain-cancelled solves leave resumable
    # checkpoints next to the journal that `batch resume` reads.
    os.environ.setdefault(
        "REPRO_CHECKPOINT_DIR", os.path.join(args.spool, "checkpoints"))
    config = ServeConfig(
        host=args.host,
        port=args.port,
        spool_dir=args.spool,
        queue_limit=args.queue_limit,
        workers=args.workers,
        deadline_seconds=args.deadline,
        degraded_deadline=args.degraded_deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        read_timeout=args.read_timeout,
        jobs=args.jobs,
        certify=args.certify or None,
        name=args.name,
        lease_ttl=args.lease_ttl,
    )
    service = AnalysisService(config)
    server = ReproServer(service)
    print(f"repro serve: listening on http://{args.host}:{args.port}"
          f" (spool: {args.spool}, queue limit {args.queue_limit},"
          f" {args.workers} workers)", file=sys.stderr, flush=True)
    with _batch_chaos():
        try:
            summary = asyncio.run(server.serve_until_signalled())
        finally:
            service.runner.close()
    left = summary.get("jobs_left_for_resume", 0)
    print(f"drained: {summary.get('cancelled_inflight', 0)} in-flight"
          f" solve(s) cancelled, {left} job(s) journaled for"
          f" `repro batch resume {args.spool}`", file=sys.stderr)
    return 0


def _cmd_serve_router(args) -> int:
    """``repro serve --route``: run the shard router until signalled."""
    import asyncio

    from .serve import ClusterService, ReproServer, RouterConfig
    from .serve.cluster import parse_replica

    try:
        replicas = [parse_replica(spec)
                    for spec in args.route.split(",") if spec.strip()]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if not replicas:
        print("error: --route needs at least one HOST:PORT replica",
              file=sys.stderr)
        return EXIT_ERROR
    config = RouterConfig(
        host=args.host,
        port=args.port,
        name=args.name or f"router:{args.host}:{args.port}",
        failure_threshold=args.failure_threshold,
        readmit_seconds=args.readmit,
        probe_interval=args.probe_interval,
        probe_timeout=args.probe_timeout,
        forward_timeout=args.deadline * 2,
        route_deadline=args.route_deadline,
        hedge_seconds=args.hedge,
        lease_ttl=args.lease_ttl,
        workers=max(2, args.workers),
        read_timeout=args.read_timeout,
    )
    service = ClusterService(config, replicas)
    server = ReproServer(service)
    names = ", ".join(r.name for r in replicas)
    print(f"repro serve (router): listening on"
          f" http://{args.host}:{args.port} routing {names}",
          file=sys.stderr, flush=True)
    service.start()
    with _batch_chaos():
        try:
            summary = asyncio.run(server.serve_until_signalled())
        finally:
            service.close()
    counters = summary.get("counters", {})
    print(f"router drained: {counters.get('routed', 0)} routed,"
          f" {counters.get('failovers', 0)} failover(s),"
          f" {counters.get('handoffs', 0)} journal handoff(s)",
          file=sys.stderr)
    return 0


def cmd_top(args) -> int:
    from .top import run_top

    return run_top(
        args.target, interval=args.interval, once=args.once,
    )


def cmd_stats(args) -> int:
    from .obs.export import snapshot_from_chrome_trace

    snapshot = snapshot_from_chrome_trace(args.trace_file)
    print(snapshot.describe())
    return 0


def cmd_smtlib(args) -> int:
    from .smt.smtlib import to_smtlib

    checked = _load(args.file, args.define)
    backend = SmtBackend(checked, steps=args.horizon, config=_config(args))
    bounds = dict(backend.machine.bounds)
    formulas = list(backend.machine.assumptions)
    formulas.extend(ob.formula for ob in backend.machine.obligations)
    print(to_smtlib(formulas, bounds=bounds), end="")
    return 0


def cmd_loc(args) -> int:
    from .analysis.loc import table1_rows

    print(f"{'Program':16s} {'FPerf-style':>12s} {'Buffy':>6s} {'ratio':>6s}")
    for row in table1_rows():
        print(f"{row.program:16s} {row.fperf_loc:12d} {row.buffy_loc:6d}"
              f" {row.ratio:5.1f}x")
    return 0


class _Parser(argparse.ArgumentParser):
    """Usage errors exit with EXIT_ERROR, not argparse's default 2 —
    exit code 2 means "undecided" in this CLI's contract."""

    def error(self, message):
        self.print_usage(sys.stderr)
        self.exit(EXIT_ERROR, f"{self.prog}: error: {message}\n")


def build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro",
        description="Buffy (HotNets '24) reproduction: model and analyze"
                    " network performance",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_file=True):
        if with_file:
            p.add_argument("file", help="Buffy source file")
        p.add_argument("-D", "--define", action="append", default=[],
                       metavar="NAME=INT",
                       help="define a named constant (repeatable)")
        p.add_argument("--horizon", type=int, default=4,
                       help="time steps to model (default 4)")
        p.add_argument("--capacity", type=int, default=6,
                       help="buffer capacity (default 6)")
        p.add_argument("--arrivals", type=int, default=2,
                       help="max arrivals per buffer per step (default 2)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="wall-clock budget; an exhausted run exits 3"
                            " with a resource report instead of hanging")
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="solver processes for the parallel portfolio"
                            " (default $REPRO_JOBS or 1)")
        p.add_argument("--solver-opt", action="append", default=[],
                       dest="solver_opt", metavar="KEY=VALUE",
                       help="tune a CDCL solver knob (repeatable);"
                            " '--solver-opt help' lists the knobs")

    def certify_opt(p):
        p.add_argument("--certify", action="store_true",
                       help="require a checker-accepted DRAT certificate"
                            " for every UNSAT/VERIFIED answer; a rejected"
                            " proof exits 5 instead of reporting proved"
                            " (default $REPRO_CERTIFY)")

    def telemetry_opts(p):
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="record spans and write a Chrome trace-event"
                            " JSON (open in https://ui.perfetto.dev)")
        p.add_argument("--trace-jsonl", default=None, metavar="FILE",
                       dest="trace_jsonl",
                       help="record spans and write them as JSON Lines"
                            " (one span per line, trace/span ids intact"
                            " — for scripted validation)")
        p.add_argument("--metrics", nargs="?", const="-", default=None,
                       metavar="FILE",
                       help="record metrics and write Prometheus text"
                            " (omit FILE to print to stdout)")

    for name, fn, help_text in (
        ("check", cmd_check, "parse and type-check"),
        ("pretty", cmd_pretty, "parse and pretty-print"),
        ("run", cmd_run, "simulate on a random workload"),
        ("verify", cmd_verify, "check asserts over a bounded horizon"),
        ("smtlib", cmd_smtlib, "dump the encoding as SMT-LIB v2"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p)
        if name == "verify":
            certify_opt(p)
            telemetry_opts(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser(
        "analyze",
        help="run an analysis back end through repro.analyze()",
    )
    common(p)
    certify_opt(p)
    telemetry_opts(p)
    p.add_argument("--backend", choices=("smt", "dafny", "houdini"),
                   default="smt",
                   help="back end to dispatch to (query-less regimes:"
                        " smt asserts, dafny monolithic, houdini"
                        " synthesis; default smt)")
    p.add_argument("--prove", action="store_true",
                   help="prove instead of searching for a counterexample")
    p.set_defaults(fn=cmd_analyze)

    batch = sub.add_parser(
        "batch",
        help="durable, crash-recoverable batch analysis"
             " (submit/run/resume/status over a journal directory)",
    )
    batch_sub = batch.add_subparsers(dest="batch_command", required=True)

    bp = batch_sub.add_parser(
        "submit", help="journal analysis jobs for later execution"
    )
    bp.add_argument("dir", help="batch journal directory")
    bp.add_argument("files", nargs="+", help="Buffy source files")
    bp.add_argument("-D", "--define", action="append", default=[],
                    metavar="NAME=INT",
                    help="define a named constant (repeatable)")
    bp.add_argument("--horizon", type=int, default=4)
    bp.add_argument("--capacity", type=int, default=6)
    bp.add_argument("--arrivals", type=int, default=2)
    bp.add_argument("--backend", choices=("smt", "dafny", "houdini"),
                    default="smt")
    bp.add_argument("--prove", action="store_true")
    bp.set_defaults(fn=cmd_batch_submit)

    for bname, resume, help_text in (
        ("run", False,
         "execute journaled jobs (requeues work orphaned by a crash)"),
        ("resume", True,
         "finish an interrupted batch: replay the journal, requeue"
         " in-flight jobs, execute only what is missing"),
    ):
        bp = batch_sub.add_parser(bname, help=help_text)
        bp.add_argument("dir", help="batch journal directory")
        bp.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS", help="per-job wall-clock budget")
        bp.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="solver processes per job"
                             " (default $REPRO_JOBS or 1)")
        bp.add_argument("--max-attempts", type=int, default=3,
                        help="attempts before a job deadletters (default 3)")
        certify_opt(bp)
        bp.set_defaults(fn=cmd_batch_run, resume=resume)

    bp = batch_sub.add_parser(
        "status", help="print the journaled job table without executing"
    )
    bp.add_argument("dir", help="batch journal directory")
    bp.add_argument("--json", action="store_true",
                    help="machine-readable output (per-state counts with"
                         " orphaned-running jobs reported distinctly,"
                         " one row per job)")
    bp.set_defaults(fn=cmd_batch_status)

    p = sub.add_parser(
        "serve",
        help="run the overload-safe analysis service (POST /v1/analyze;"
             " SIGTERM drains: in-flight solves checkpoint, the backlog"
             " journals for `batch resume`)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8650)
    p.add_argument("--spool", default=".repro-serve", metavar="DIR",
                   help="durable spool: batch journal + shared result"
                        " cache + solver checkpoints (default .repro-serve)")
    p.add_argument("--queue-limit", type=int, default=8, metavar="Q",
                   help="bounded admission queue; beyond it requests get"
                        " 429 + Retry-After (default 8)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="solve worker threads (default 2)")
    p.add_argument("--deadline", type=float, default=30.0, metavar="SECONDS",
                   help="per-request budget at NORMAL load (default 30)")
    p.add_argument("--degraded-deadline", type=float, default=0.5,
                   metavar="SECONDS",
                   help="per-request budget once the ladder degrades:"
                        " saturated requests answer fast UNKNOWN"
                        " (default 0.5)")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive solve-path failures that trip the"
                        " circuit breaker (default 3)")
    p.add_argument("--breaker-reset", type=float, default=5.0,
                   metavar="SECONDS",
                   help="seconds an open breaker waits before half-open"
                        " probes (default 5)")
    p.add_argument("--read-timeout", type=float, default=5.0,
                   metavar="SECONDS",
                   help="per-read client deadline; slow clients get 408"
                        " (default 5)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="solver processes per solve"
                        " (default $REPRO_JOBS or 1)")
    p.add_argument("--name", default=None, metavar="NAME",
                   help="this replica's cluster name (default HOST:PORT);"
                        " stamps journal records and the spool lease")
    p.add_argument("--lease-ttl", type=float, default=10.0,
                   metavar="SECONDS",
                   help="spool-lease heartbeat TTL: how stale this"
                        " replica's heartbeat must be before a router may"
                        " take over its journal (default 10)")
    p.add_argument("--route", default=None, metavar="REPLICAS",
                   help="router mode: comma-separated HOST:PORT[=SPOOL]"
                        " replicas; requests are consistent-hash routed"
                        " with health-probed failover, and a dead"
                        " replica's spool (when given) is finished via"
                        " journal handoff")
    p.add_argument("--probe-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="router: seconds between replica health probes"
                        " (default 1)")
    p.add_argument("--probe-timeout", type=float, default=2.0,
                   metavar="SECONDS",
                   help="router: per-probe timeout (default 2)")
    p.add_argument("--readmit", type=float, default=5.0, metavar="SECONDS",
                   help="router: seconds an ejected replica waits before"
                        " a re-admission probe (default 5)")
    p.add_argument("--failure-threshold", type=int, default=3,
                   help="router: consecutive probe/forward failures that"
                        " eject a replica (default 3)")
    p.add_argument("--hedge", type=float, default=None, metavar="SECONDS",
                   help="router: hedge a second replica after this much"
                        " silence (off by default; a hedged job may"
                        " solve twice)")
    p.add_argument("--route-deadline", type=float, default=90.0,
                   metavar="SECONDS",
                   help="router: total wall budget for one request"
                        " across all failovers (default 90)")
    certify_opt(p)
    p.set_defaults(fn=cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="deterministic fault-injection campaigns with a"
             " cluster-wide durability auditor",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_cmd", required=True)
    cp = chaos_sub.add_parser(
        "run",
        help="enumerate a scenario's fault points, replay it fault by"
             " fault, audit every episode, dump failing episodes as"
             " repro bundles",
    )
    cp.add_argument("--scenario", default="cluster",
                    choices=("batch", "serve", "cluster"),
                    help="workload to campaign over (default cluster)")
    cp.add_argument("--episodes", type=int, default=50, metavar="N",
                    help="episode budget: singles round-robin across"
                         " fault kinds, then sampled pairs (default 50)")
    cp.add_argument("--seed", type=int, default=7,
                    help="campaign seed: fixes the pair sampling and"
                         " the injected fault parameters (default 7)")
    cp.add_argument("--bundle-dir", default=None, metavar="DIR",
                    help="where failing episodes dump repro bundles"
                         " (default: under the campaign workdir)")
    cp.add_argument("--workdir", default=None, metavar="DIR",
                    help="scratch directory for episode spools"
                         " (default: a tempdir, removed when green)")
    cp.add_argument("--kinds", default=None, metavar="K1,K2",
                    help="restrict the fault universe to these kinds")
    cp.add_argument("--fail-fast", action="store_true",
                    help="stop the campaign at the first red episode")
    cp.add_argument("--json", action="store_true",
                    help="print the full campaign report as JSON")
    cp.set_defaults(fn=cmd_chaos_run)
    cp = chaos_sub.add_parser(
        "replay",
        help="re-execute a failing episode's bundle: offline re-audit"
             " of the bundled journals plus a live re-run under the"
             " bundled fault schedule",
    )
    cp.add_argument("bundle", help="bundle directory from `chaos run`")
    cp.add_argument("--workdir", default=None, metavar="DIR",
                    help="scratch directory for the live re-run")
    cp.add_argument("--json", action="store_true",
                    help="print the replay report as JSON")
    cp.set_defaults(fn=cmd_chaos_replay)

    p = sub.add_parser(
        "top",
        help="live job/solver introspection: attach to a running serve"
             " (HOST:PORT) or a spool/batch directory and refresh a"
             " job table with solver progress in place",
    )
    p.add_argument("target",
                   help="a serve endpoint (HOST:PORT or http://HOST:PORT)"
                        " or a spool/batch journal directory")
    p.add_argument("--interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="refresh interval (default 1.0)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (scripts, CI)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "stats", help="summarize a --trace file (spans by total time)"
    )
    p.add_argument("trace_file", help="Chrome trace JSON from --trace")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("loc", help="print the Table-1 LoC comparison")
    p.set_defaults(fn=cmd_loc)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BuffyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
