"""repro.client — a well-behaved client for ``repro serve``.

Stdlib-only (:mod:`http.client`).  "Well-behaved" means the retry
loop cooperates with the server's overload control instead of fighting
it:

* ``429``/``503`` retry after honoring the server's ``Retry-After``
  header — the server's estimate of when a queue slot frees is better
  than any client-side guess;
* transport errors (connection refused/reset, timeouts) retry under
  exponential backoff with seeded jitter, capped at ``backoff_cap`` —
  jitter decorrelates a thundering herd of restarting clients; with
  ``failover`` endpoints configured, a transport error also rotates to
  the next endpoint *immediately* (a dead replica shouldn't cost a
  backoff sleep when a live one is known) — until a full rotation has
  failed, at which point every endpoint is down and the jittered
  backoff applies between laps;
* an overall ``deadline`` caps total wall-time across every retry and
  failover — a long ``Retry-After`` chain can otherwise exceed any
  caller's budget;
* everything else — including fast UNKNOWN verdicts — is returned to
  the caller: a degraded answer is an answer, not a retry trigger.

Every response is a plain dict with ``status`` (the HTTP code) merged
over the JSON body; :class:`ServiceUnavailable` is raised only after
the retry budget (attempts or deadline) is spent.  ``last_report``
records what the most recent logical request cost: attempts,
failovers, the endpoint that answered, elapsed wall-time.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Callable, Optional, Sequence, Union

from .obs import TRACER, make_traceparent

#: Statuses worth retrying: overload rejects and drain, never 4xx bugs.
RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceUnavailable(RuntimeError):
    """The retry budget was spent without a non-retryable answer."""

    def __init__(self, message: str, last: Optional[dict] = None):
        super().__init__(message)
        self.last = last


def _parse_endpoint(spec: Union[str, tuple]) -> tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` → ``(host, port)``."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, _, port_text = str(spec).rpartition(":")
    if not host or not port_text:
        raise ValueError(f"endpoint {spec!r} is not HOST:PORT")
    return host, int(port_text)


class ServiceClient:
    """One server endpoint (plus optional failovers) and a retry policy."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8650,
        *,
        tenant: str = "default",
        timeout: float = 60.0,
        max_retries: int = 5,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        failover: Sequence[Union[str, tuple]] = (),
        deadline: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.max_retries = max(0, max_retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._clock = clock
        #: Total wall-time budget per logical request, across every
        #: retry, Retry-After wait, and failover.  None = attempts-only.
        self.deadline = deadline
        #: Endpoint rotation order: the primary plus the failovers.
        #: ``self.host``/``self.port`` always reflect the *current*
        #: endpoint (``repro top`` shows where requests are going).
        self.endpoints: list[tuple[str, int]] = [(host, port)]
        self.endpoints += [_parse_endpoint(spec) for spec in failover]
        self._endpoint_index = 0
        #: The traceparent sent with the most recent request — the
        #: handle for fetching its distributed trace later.
        self.last_traceparent: Optional[str] = None
        #: What the most recent logical request cost (attempts,
        #: failovers, endpoint, elapsed_seconds, status/error).
        self.last_report: dict[str, Any] = {}

    # ----- the API ----------------------------------------------------------

    def analyze(
        self,
        source: str,
        *,
        backend: str = "smt",
        steps: int = 6,
        consts: Optional[dict[str, int]] = None,
        prove: bool = False,
        options: Optional[dict] = None,
        label: Optional[str] = None,
        priority: Optional[int] = None,
        retry: bool = True,
    ) -> dict:
        """Submit one analysis; retries rejects per the policy above."""
        payload: dict[str, Any] = {
            "source": source, "backend": backend, "steps": steps,
            "prove": prove, "tenant": self.tenant,
        }
        if consts:
            payload["consts"] = consts
        if options:
            payload["options"] = options
        if label is not None:
            payload["label"] = label
        if priority is not None:
            payload["priority"] = priority
        return self.request("POST", "/v1/analyze", payload, retry=retry)

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}", retry=False)

    def jobs(self) -> dict:
        return self.request("GET", "/v1/jobs", retry=False)

    def job_trace(self, job_id: str) -> dict:
        """The job's stitched span tree (client → serve → workers)."""
        return self.request("GET", f"/v1/jobs/{job_id}/trace", retry=False)

    def job_progress(self, job_id: str) -> dict:
        """Live solver-progress samples for a (running) job."""
        return self.request("GET", f"/v1/jobs/{job_id}/progress",
                            retry=False)

    def cluster(self) -> dict:
        """Topology + replica health (router mode only)."""
        return self.request("GET", "/v1/cluster", retry=False)

    def health(self) -> dict:
        return self.request("GET", "/healthz", retry=False)

    def ready(self) -> dict:
        return self.request("GET", "/readyz", retry=False)

    def metrics(self) -> str:
        """The raw Prometheus text (not JSON)."""
        status, headers, body = self._once("GET", "/metrics", None)
        if status != 200:
            raise ServiceUnavailable(f"/metrics answered {status}")
        return body.decode("utf-8")

    # ----- transport --------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[dict] = None, *,
                retry: bool = True) -> dict:
        """One logical request through the retry loop.

        Opens a ``client-request`` span when tracing is enabled and
        propagates the trace context in a ``traceparent`` header —
        fabricating a fresh one for submissions even with tracing off,
        so the server side of the trace is always stitchable.  Retried
        attempts reuse the same traceparent: one logical request, one
        trace node.
        """
        with TRACER.span("client-request", method=method, path=path):
            traceparent = TRACER.traceparent()
            if traceparent is None and method == "POST":
                traceparent = make_traceparent()
            if traceparent is not None:
                self.last_traceparent = traceparent
            return self._request(method, path, payload, traceparent,
                                 retry=retry)

    def _rotate_endpoint(self) -> None:
        """Advance to the next configured endpoint (transport failover)."""
        self._endpoint_index = \
            (self._endpoint_index + 1) % len(self.endpoints)
        self.host, self.port = self.endpoints[self._endpoint_index]

    def _request(self, method: str, path: str, payload: Optional[dict],
                 traceparent: Optional[str], *, retry: bool) -> dict:
        attempts = (self.max_retries + 1) if retry else 1
        started = self._clock()
        hard_deadline = (started + self.deadline
                         if self.deadline is not None else None)
        report: dict[str, Any] = {
            "method": method, "path": path,
            "attempts": 0, "failovers": 0,
        }
        self.last_report = report

        def finish(status: Any = None, error: Any = None,
                   deadline_exceeded: bool = False) -> None:
            report["endpoint"] = f"{self.host}:{self.port}"
            report["elapsed_seconds"] = round(self._clock() - started, 6)
            if status is not None:
                report["status"] = status
            if error is not None:
                report["error"] = error
            if deadline_exceeded:
                report["deadline_exceeded"] = True

        def budget_left() -> Optional[float]:
            if hard_deadline is None:
                return None
            return hard_deadline - self._clock()

        def sleep_within_budget(delay: float) -> bool:
            """Sleep ``delay`` clamped to the deadline; False when the
            budget is already spent (caller stops retrying)."""
            left = budget_left()
            if left is not None:
                if left <= 0.0:
                    return False
                delay = min(delay, left)
            if delay > 0.0:
                self._sleep(delay)
            return True

        last_doc: Optional[dict] = None
        last_error: Optional[Exception] = None
        #: endpoint → most recent failure reason, so the exhaustion
        #: error can say *which* replica failed *how* instead of only
        #: surfacing the last exception (campaign logs are actionable).
        endpoint_errors: dict[str, str] = {}
        report["endpoints"] = endpoint_errors
        attempt = 0
        while attempt < attempts:
            left = budget_left()
            if left is not None and left <= 0.0:
                break
            report["attempts"] = attempt + 1
            try:
                status, headers, body = self._once(
                    method, path, payload, traceparent)
            except (OSError, http.client.HTTPException) as exc:
                last_error = exc
                endpoint_errors[f"{self.host}:{self.port}"] = repr(exc)
                attempt += 1
                if attempt >= attempts:
                    break
                if len(self.endpoints) > 1:
                    # A known-alternative endpoint beats a backoff nap
                    # against a dead socket: rotate and go immediately —
                    # but once a full rotation has failed, every
                    # endpoint is down (a restarting cluster), and the
                    # jittered backoff must apply before the next lap
                    # or the herd hammers it with zero sleep.
                    self._rotate_endpoint()
                    report["failovers"] += 1
                    if report["failovers"] % len(self.endpoints) != 0:
                        continue
                if not sleep_within_budget(self._backoff(attempt - 1)):
                    break
                continue
            doc = _decode(body)
            doc["status"] = status
            if status not in RETRYABLE_STATUSES or not retry:
                finish(status=status)
                return doc
            last_doc = doc
            endpoint_errors[f"{self.host}:{self.port}"] = (
                f"{status} {doc.get('reason', 'rejected')}")
            attempt += 1
            if attempt >= attempts:
                break
            if not sleep_within_budget(
                    self._retry_delay(headers, doc, attempt - 1)):
                break
        exceeded = (hard_deadline is not None
                    and self._clock() >= hard_deadline)
        budget = (f"deadline {self.deadline}s" if exceeded
                  else f"{report['attempts']} attempts")
        per_endpoint = "; ".join(
            f"{ep}: {why}" for ep, why in endpoint_errors.items())
        detail = f" [{per_endpoint}]" if per_endpoint else ""
        if last_doc is not None:
            finish(status=last_doc.get("status"),
                   error=last_doc.get("reason", "rejected"),
                   deadline_exceeded=exceeded)
            raise ServiceUnavailable(
                f"{method} {path} still rejected after {budget}:"
                f" {last_doc.get('reason', '?')}{detail}",
                last=last_doc,
            )
        finish(error=repr(last_error), deadline_exceeded=exceeded)
        raise ServiceUnavailable(
            f"{method} {path} unreachable after {budget}:"
            f" {last_error!r}{detail}"
        )

    def _once(self, method: str, path: str, payload: Optional[dict],
              traceparent: Optional[str] = None) -> tuple[int, dict, bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {"X-Repro-Tenant": self.tenant}
            if traceparent is not None:
                headers["traceparent"] = traceparent
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            return resp.status, dict(resp.getheaders()), data
        finally:
            conn.close()

    # ----- backoff ----------------------------------------------------------

    def _retry_delay(self, headers: dict, doc: dict, attempt: int) -> float:
        """Server-directed wait: Retry-After (header, else body) plus a
        jittered slice of the base backoff to spread synchronized
        clients; falls back to pure exponential backoff."""
        retry_after = headers.get("Retry-After") or doc.get("retry_after")
        try:
            hinted = float(retry_after)
        except (TypeError, ValueError):
            return self._backoff(attempt)
        return max(0.0, hinted) + self._rng.random() * self.backoff_base

    def _backoff(self, attempt: int) -> float:
        base = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return base * (0.5 + self._rng.random())


def _decode(body: bytes) -> dict:
    try:
        doc = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return {"raw": body.decode("utf-8", "replace")}
    if not isinstance(doc, dict):
        return {"raw": doc}
    return doc
