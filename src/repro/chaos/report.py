"""Campaign reports and failing-episode repro bundles.

A bundle is the minimal artifact that makes a red episode someone
else's bug report: the seed, the fault schedule, the fault-free
oracle's verdicts, the client-observed answers, the violations, and a
byte-for-byte copy of every spool file.  ``repro chaos replay`` takes
a bundle and (a) re-audits the copied journals offline — the
violations must reproduce from the artifact alone — and (b) re-runs
the scenario live under the same schedule.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .auditor import Violation, audit_spools

BUNDLE_FILE = "bundle.json"

#: Spool files worth copying into a bundle (everything the auditor and
#: a resume can use; caches are derivable, so they stay behind).
SPOOL_FILES = ("journal.jsonl", "owner.json", "snapshot.json")


@dataclass
class EpisodeResult:
    """One episode's schedule, observations, and verdict."""

    index: int
    schedule: list
    fired: list = field(default_factory=list)
    answers: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)
    bundle: Optional[Path] = None

    def to_json(self) -> dict:
        return {
            "episode": self.index,
            "schedule": self.schedule,
            "fired": self.fired,
            "violations": [v.to_json() for v in self.violations],
            "bundle": str(self.bundle) if self.bundle else None,
        }


@dataclass
class CampaignReport:
    """What one ``repro chaos run`` did, CLI- and JSON-renderable."""

    scenario: str
    seed: int
    universe: list = field(default_factory=list)
    oracle_verdicts: dict = field(default_factory=dict)
    episodes: list = field(default_factory=list)

    def add(self, episode: EpisodeResult) -> None:
        self.episodes.append(episode)

    @property
    def failed(self) -> list:
        return [ep for ep in self.episodes if ep.violations]

    @property
    def green(self) -> bool:
        return not self.failed

    def violation_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for episode in self.failed:
            for violation in episode.violations:
                counts[violation.invariant] = counts.get(
                    violation.invariant, 0) + 1
        return counts

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "universe_points": len(self.universe),
            "universe": self.universe,
            "episodes_run": len(self.episodes),
            "episodes_failed": len(self.failed),
            "violations": self.violation_counts(),
            "green": self.green,
            "failed": [ep.to_json() for ep in self.failed],
        }

    def describe(self) -> str:
        head = (
            f"chaos campaign [{self.scenario}] seed {self.seed}: "
            f"{len(self.episodes)} episodes over "
            f"{len(self.universe)} fault points"
        )
        if self.green:
            return head + " — auditor green"
        lines = [head + f" — {len(self.failed)} RED"]
        for invariant, count in sorted(self.violation_counts().items()):
            lines.append(f"  {invariant}: {count}")
        for episode in self.failed:
            if episode.bundle:
                lines.append(f"  bundle: {episode.bundle}")
        return "\n".join(lines)


# ----- bundles --------------------------------------------------------------


def dump_bundle(root: Path, *, scenario: str, seed: int,
                episode: EpisodeResult, outcome,
                oracle=None) -> Path:
    """Write a failing episode's repro bundle; returns its directory."""
    root = Path(root)
    bundle_dir = root / f"ep{episode.index:03d}"
    bundle_dir.mkdir(parents=True, exist_ok=True)
    spool_names = {}
    for name, directory in outcome.spools.items():
        dest = bundle_dir / "spools" / name
        dest.mkdir(parents=True, exist_ok=True)
        for filename in SPOOL_FILES:
            src = Path(directory) / filename
            if src.exists():
                shutil.copy2(src, dest / filename)
        spool_names[name] = str(dest)
    doc = {
        "scenario": scenario,
        "seed": seed,
        "episode": episode.index,
        "schedule": episode.schedule,
        "fired": episode.fired,
        "answers": outcome.answers,
        "oracle_verdicts": dict(oracle.verdicts()) if oracle else {},
        "violations": [v.to_json() for v in episode.violations],
        "notes": getattr(outcome, "notes", {}),
        "live_claims": getattr(outcome, "live_claims", {}),
    }
    (bundle_dir / BUNDLE_FILE).write_text(
        json.dumps(doc, indent=2, sort_keys=True), encoding="utf-8")
    return bundle_dir


def load_bundle(bundle_dir: Path) -> dict:
    bundle_dir = Path(bundle_dir)
    path = bundle_dir / BUNDLE_FILE
    doc = json.loads(path.read_text(encoding="utf-8"))
    doc["_dir"] = bundle_dir
    return doc


def audit_bundle(bundle_dir: Path) -> tuple[dict, list[Violation]]:
    """Offline re-audit: run the auditor over the *copied* spool files.

    The violations recorded at dump time must reproduce from the
    artifact alone — this is what makes a bundle a self-contained bug
    report rather than a pointer into a vanished tempdir.
    """
    doc = load_bundle(bundle_dir)
    spools_root = Path(bundle_dir) / "spools"
    spools = {p.name: p for p in sorted(spools_root.iterdir())
              if p.is_dir()} if spools_root.is_dir() else {}
    kinds = {k for k, _ in map(tuple, doc.get("schedule", ()))}
    violations = audit_spools(
        spools,
        answers=doc.get("answers", {}),
        oracle_verdicts=doc.get("oracle_verdicts", {}),
        schedule_kinds=kinds,
        live_claims=doc.get("live_claims", {}),
    )
    return doc, violations


def replay_bundle(bundle_dir: Path,
                  workdir: Optional[Path] = None) -> dict:
    """Re-execute a bundle's episode: offline re-audit, then a live
    re-run of the scenario under the same schedule and seed."""
    from ..runtime.chaos import ChaosConfig, inject_faults
    from .campaign import ScheduledMonkey
    from .scenarios import make_scenario

    doc, offline = audit_bundle(bundle_dir)
    schedule = [tuple(p) for p in doc.get("schedule", ())]
    scenario = make_scenario(doc["scenario"])
    base = Path(workdir) if workdir else Path(
        tempfile.mkdtemp(prefix="repro-chaos-replay-"))
    base.mkdir(parents=True, exist_ok=True)
    monkey = ScheduledMonkey(schedule, config=ChaosConfig(
        seed=int(doc.get("seed", 0))))
    with inject_faults(monkey=monkey):
        outcome = scenario.run(monkey, base)
    live = audit_spools(
        outcome.spools,
        answers=outcome.answers,
        oracle_verdicts=doc.get("oracle_verdicts", {}),
        schedule_kinds={k for k, _ in schedule},
        live_claims=outcome.live_claims,
    )
    return {
        "bundle": str(bundle_dir),
        "scenario": doc["scenario"],
        "schedule": doc.get("schedule", []),
        "offline_violations": [v.to_json() for v in offline],
        "live_fired": [list(p) for p in monkey.fired],
        "live_violations": [v.to_json() for v in live],
        "reproduced": bool(offline) or bool(live),
    }
