"""Deterministic chaos campaigns with a durability auditor.

``repro.runtime.chaos`` injects *randomized* faults at seeded rates;
this package turns those hooks (plus scenario-level nemeses) into
*exhaustive, replayable* campaigns: record a scenario's fault
universe, replay it fault point by fault point, audit every episode
against the durability invariants, and dump failing episodes as
self-contained repro bundles.  Surfaced as ``repro chaos run`` and
``repro chaos replay``.
"""

from .auditor import (
    RESPONSE_LOSS_KINDS,
    WRITE_LOSS_KINDS,
    Violation,
    audit_episode,
    audit_spools,
    scan_spool,
)
from .campaign import (
    CampaignConfig,
    ChaosCampaign,
    FaultPoint,
    ScheduledMonkey,
    build_schedules,
    enumerate_points,
    run_campaign,
)
from .report import (
    CampaignReport,
    EpisodeResult,
    audit_bundle,
    dump_bundle,
    load_bundle,
    replay_bundle,
)
from .scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioOutcome,
    make_scenario,
)

__all__ = [
    "RESPONSE_LOSS_KINDS",
    "WRITE_LOSS_KINDS",
    "Violation",
    "audit_episode",
    "audit_spools",
    "scan_spool",
    "CampaignConfig",
    "ChaosCampaign",
    "FaultPoint",
    "ScheduledMonkey",
    "build_schedules",
    "enumerate_points",
    "run_campaign",
    "CampaignReport",
    "EpisodeResult",
    "audit_bundle",
    "dump_bundle",
    "load_bundle",
    "replay_bundle",
    "SCENARIOS",
    "Scenario",
    "ScenarioOutcome",
    "make_scenario",
]
