"""Campaign scenarios: the workloads chaos episodes replay.

A scenario is a deterministic script over real subsystems — a real
:class:`~repro.persist.batch.BatchRunner`, real
:class:`~repro.serve.service.AnalysisService` replicas behind real
HTTP listeners, a real :class:`~repro.serve.cluster.ClusterService`
router — driven end-to-end inside one process so the campaign can
enumerate its chaos consultations and re-run it hundreds of times.

Three ship with the engine:

``batch``
    One spool, four jobs, the real solver (tiny two-step programs).
    Covers the solver hooks (unknown/fault/delay), journal/cache I/O
    errors, cache corruption, and the cross-process worker-crash knob.
``serve``
    One replica over HTTP.  Adds admission, the request path
    (request_kill, slow_client), and the lease heartbeat (lease_skew).
``cluster``
    Two replicas plus the shard router.  Adds forwarding faults
    (replica_kill, partition), probe flaps, and the scenario-level
    nemeses: ``replica_down`` (an in-process hard kill that models
    SIGKILL: fence the journal, cancel in-flight work, stop the
    listener, *keep the lease*) and ``torn_tail`` (truncate the dead
    spool's final journal record mid-byte, the crash-during-append
    window).

Scenarios must be **replayable**: same monkey decisions → same
workload.  They therefore never branch on wall-clock time or live
randomness — only on the monkey's scheduled answers.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..obs.tracer import make_traceparent, parse_traceparent

#: The provable two-step program every scenario solves (variants add a
#: comment so each job gets its own idempotency key).
SRC = """
prog(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
  assert(backlog-p(ob) >= 0);
}
"""

DEFINITIVE = ("proved", "violated")


def variant(i: int) -> str:
    return SRC + f"// chaos variant {i}\n"


def stub_solve(rec, budget, escalation):
    """Replica solve stub: instant, deterministic, PROVED — matches
    what the real engine proves for :data:`SRC`, so verdicts agree
    with the router's real-solve handoff path and the batch oracle."""
    from ..analysis.result import AnalysisOutcome, Verdict

    return AnalysisOutcome(verdict=Verdict.PROVED)


@dataclass
class ScenarioOutcome:
    """What one scenario run observed, for the auditor."""

    #: Spool name → directory (journal + owner.json + snapshot).
    spools: dict[str, Path]
    #: job_id → {verdict, trace_id, status, note} as the *client* saw it.
    answers: dict[str, dict] = field(default_factory=dict)
    #: Spool name → names of processes that, at scenario end, believe
    #: they hold that spool's lease (fenced runners don't count).
    live_claims: dict[str, list[str]] = field(default_factory=dict)
    notes: dict = field(default_factory=dict)

    def verdicts(self) -> dict[str, str]:
        """Definitive client-observed verdicts only (a degraded
        ``unknown`` is an answer, not a claim the auditor can hold
        against the oracle)."""
        return {
            job_id: answer["verdict"]
            for job_id, answer in self.answers.items()
            if answer.get("verdict") in DEFINITIVE
        }


class Scenario:
    """Base contract; see the module docstring."""

    name = "base"

    def extra_points(self):
        """Fault points the record run cannot observe (env-driven or
        conditional nemeses), added to the universe explicitly."""
        return []

    def seed_schedules(self):
        """Schedules guaranteed a slot right after the singles —
        correlated cases the random pair sampler must not miss."""
        return []

    def run(self, monkey, workdir: Path) -> ScenarioOutcome:
        raise NotImplementedError


# ----- batch ----------------------------------------------------------------


class BatchScenario(Scenario):
    """Four real solves through one journaled spool."""

    name = "batch"
    JOBS = 4

    def extra_points(self):
        # Worker crashes are injected *inside the worker pool* from the
        # environment (they must survive fork/spawn), so the record run
        # never consults them in-process.
        return [("worker_crash", 0)]

    def run(self, monkey, workdir: Path) -> ScenarioOutcome:
        from ..persist.batch import BatchRunner

        spool = workdir / "spool"
        crash = hasattr(monkey, "has_kind") and monkey.has_kind(
            "worker_crash")
        runner = BatchRunner(spool, max_attempts=3, backoff_base=0.01,
                             backoff_cap=0.05)
        try:
            runner.submit(
                [(f"job{i}", variant(i)) for i in range(self.JOBS)],
                steps=2)
            old = os.environ.get("REPRO_CHAOS_WORKER_CRASH")
            if crash:
                os.environ["REPRO_CHAOS_WORKER_CRASH"] = "1.0"
            try:
                report = runner.run(jobs=2 if crash else None)
            finally:
                if crash:
                    if old is None:
                        os.environ.pop("REPRO_CHAOS_WORKER_CRASH", None)
                    else:
                        os.environ["REPRO_CHAOS_WORKER_CRASH"] = old
        finally:
            runner.close()
        answers = {
            rec.job_id: {
                "verdict": rec.verdict, "trace_id": rec.trace_id,
                "status": rec.state, "note": rec.error,
            }
            for rec in report.records
        }
        return ScenarioOutcome(spools={"spool": spool}, answers=answers)


# ----- serve ----------------------------------------------------------------


class ServeScenario(Scenario):
    """Six requests against one replica over real HTTP."""

    name = "serve"
    JOBS = 6

    def run(self, monkey, workdir: Path) -> ScenarioOutcome:
        from ..client import ServiceClient, ServiceUnavailable
        from ..serve import AnalysisService, ReproServer, ServeConfig

        cfg = ServeConfig(port=0, spool_dir=workdir / "r0", workers=2,
                          queue_limit=16, lease_ttl=0.4, name="r0")
        service = AnalysisService(cfg, solve_fn=stub_solve)
        server = ReproServer(service)
        server.start_background()
        answers: dict[str, dict] = {}
        failures: list[str] = []
        try:
            client = ServiceClient(
                "127.0.0.1", server.port, timeout=5.0, max_retries=3,
                backoff_base=0.01, backoff_cap=0.05)
            for i in range(self.JOBS):
                try:
                    doc = client.analyze(
                        variant(i), steps=2, label=f"job{i}")
                except ServiceUnavailable as exc:
                    failures.append(f"job{i}: {exc}")
                    continue
                parsed = parse_traceparent(client.last_traceparent)
                answers[doc["job_id"]] = {
                    "verdict": doc.get("verdict"),
                    "trace_id": parsed[0] if parsed else None,
                    "status": 200, "note": doc.get("note"),
                }
            claims = _lease_claims({"r0": service})
        finally:
            server.stop_background(drain=True)
            service.close()
        return ScenarioOutcome(
            spools={"r0": workdir / "r0"}, answers=answers,
            live_claims=claims, notes={"failures": failures})


# ----- cluster --------------------------------------------------------------


def hard_kill(service, server) -> None:
    """In-process SIGKILL model for one replica.

    Mirrors what an abrupt process death leaves behind: the journal
    stops moving (fence), in-flight solves die (cancel + drain note →
    503, so the router fails the requests over), the listener closes —
    and the spool lease is **not** released, so a takeover must wait
    out the heartbeat TTL exactly as with a real corpse.
    """
    service.runner.fenced = True
    service.draining = True
    service.admission.draining = True
    with service._inflight_lock:
        for budget in service._inflight.values():
            budget.cancel()
    service._lease_stop.set()
    server.stop_background(drain=False, timeout=5.0)
    service._pool.shutdown(wait=False)


def _lease_claims(services: dict) -> dict[str, list[str]]:
    """Who believes they own each live service's spool right now."""
    claims: dict[str, list[str]] = {}
    for spool_name, service in services.items():
        holders = []
        if (not service.runner.fenced
                and service.runner.lease.holder() == service.name):
            holders.append(service.name)
        claims[spool_name] = holders
    return claims


class ClusterScenario(Scenario):
    """Two replicas behind the shard router, with nemeses.

    Script (consultation order is fixed; what *fires* is scheduled)::

        warm: jobs 0-2 sequentially through the router
        nemesis point: replica_down #0  (hard-kill r0)
        probe sweep 1
        burst: jobs 3-7 from three client threads
        nemesis point: replica_down #1  (hard-kill r0 if still up)
        nemesis point: torn_tail #0     (tear dead spool's last record)
        probe sweep 2
        recovery: wait out the dead lease, router takes the spool over
        skew sweep: hand off any live spool whose lease *looks* stale
                    (what a skewed heartbeat invites — fencing must hold)
        final claims snapshot → auditor
    """

    name = "cluster"
    WARM = 3
    BURST = 5

    def extra_points(self):
        # torn_tail is only *applied* when a replica died first, so the
        # fault-free record run never counts it.
        return [("torn_tail", 0)]

    def seed_schedules(self):
        # The correlated case this campaign exists for: crash + torn
        # journal tail during the handoff window.
        return [[("replica_down", 0), ("torn_tail", 0)],
                [("replica_down", 1), ("torn_tail", 0)]]

    def run(self, monkey, workdir: Path) -> ScenarioOutcome:
        from ..persist.batch import SpoolLease
        from ..persist.journal import tear_tail
        from ..serve import AnalysisService, ReproServer, ServeConfig
        from ..serve.cluster import ClusterService, Replica, RouterConfig

        services: dict[str, AnalysisService] = {}
        servers: dict[str, ReproServer] = {}
        replicas: list[Replica] = []
        for name in ("r0", "r1"):
            cfg = ServeConfig(
                port=0, spool_dir=workdir / name, workers=2,
                queue_limit=32, lease_ttl=0.4, name=name)
            service = AnalysisService(cfg, solve_fn=stub_solve)
            server = ReproServer(service)
            server.start_background()
            services[name] = service
            servers[name] = server
            replicas.append(Replica(
                name=name, host="127.0.0.1", port=server.port,
                spool=workdir / name))
        router = ClusterService(RouterConfig(
            name="router", probe_interval=3600.0, probe_timeout=2.0,
            failure_threshold=3, readmit_seconds=3600.0,
            forward_timeout=5.0, route_deadline=10.0, lease_ttl=0.4,
        ), replicas)

        answers: dict[str, dict] = {}
        answers_lock = threading.Lock()
        failures: list[str] = []
        down: list[str] = []

        def submit(i: int) -> None:
            payload = {"source": variant(i), "steps": 2,
                       "label": f"job{i}"}
            tp = make_traceparent()
            parsed = parse_traceparent(tp)
            last = None
            for _attempt in range(4):
                status, body = asyncio.run(
                    router.analyze(payload, traceparent=tp))
                last = (status, body)
                if status == 200:
                    with answers_lock:
                        answers[body["job_id"]] = {
                            "verdict": body.get("verdict"),
                            "trace_id": parsed[0] if parsed else None,
                            "status": status, "note": body.get("note"),
                        }
                    return
                time.sleep(0.1)
            with answers_lock:
                failures.append(f"job{i}: {last!r}")

        def kill(name: str) -> None:
            if name in down:
                return
            hard_kill(services[name], servers[name])
            down.append(name)

        try:
            # Warm phase: sequential, so early faults land on a quiet
            # cluster and the record run counts a stable prefix.
            for i in range(self.WARM):
                submit(i)

            if monkey.nemesis("replica_down"):
                kill("r0")
            router.registry.probe_all()

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(self.WARM, self.WARM + self.BURST)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            if monkey.nemesis("replica_down"):
                kill("r0")
            if monkey.nemesis("torn_tail") and down:
                from ..persist.batch import BatchRunner
                tear_tail(workdir / down[0] / BatchRunner.JOURNAL)
            router.registry.probe_all()

            # Recovery: a dead replica's spool is taken over once its
            # lease heartbeat goes stale (the router's async handoff
            # may have been refused while the lease was still fresh).
            for name in down:
                lease = SpoolLease(workdir / name, ttl_seconds=0.4)
                deadline = time.monotonic() + 5.0
                while (not lease.is_stale()
                       and time.monotonic() < deadline):
                    time.sleep(0.05)
                dead = next(r for r in replicas if r.name == name)
                router.handoff(dead)

            # Skew sweep: a *live* replica whose heartbeat was skewed
            # into the past looks dead — take its spool over exactly as
            # a real router would, and let fencing + reacquire heal it.
            if (hasattr(monkey, "has_kind")
                    and monkey.has_kind("lease_skew")):
                for name in ("r0", "r1"):
                    if name in down:
                        continue
                    lease = SpoolLease(workdir / name, ttl_seconds=0.4)
                    for _check in range(6):
                        if lease.is_stale():
                            rep = next(r for r in replicas
                                       if r.name == name)
                            router.handoff(rep)
                            break
                        time.sleep(0.08)
                # Give the victim's heartbeat a beat to notice, fence,
                # and reacquire the released spool.
                time.sleep(0.3)

            claims = _lease_claims(
                {n: s for n, s in services.items() if n not in down})
        finally:
            router.close()
            for name, server in servers.items():
                if name in down:
                    services[name].runner.close()
                else:
                    server.stop_background(drain=True)
                    services[name].close()
        return ScenarioOutcome(
            spools={name: workdir / name for name in services},
            answers=answers, live_claims=claims,
            notes={"failures": failures, "down": list(down)})


SCENARIOS = {
    cls.name: cls for cls in (BatchScenario, ServeScenario,
                              ClusterScenario)
}


def make_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (have: {', '.join(sorted(SCENARIOS))})"
        ) from None
