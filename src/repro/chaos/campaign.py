"""The deterministic chaos campaign engine.

A campaign answers one question about a scenario (a batch run, a
single server, a routed cluster): *does every durability invariant
hold under every fault we know how to inject?*  Randomized background
chaos (``REPRO_CHAOS_*`` rates) answers it statistically; the campaign
answers it exhaustively and reproducibly:

1. **Record.**  Run the scenario once with a counting monkey that
   injects nothing.  Every chaos consultation — a solver intercept, a
   journal append, a lease renewal, a forward — increments a per-kind
   counter.  The resulting counts enumerate the scenario's *fault
   universe*: the set of ``(kind, index)`` points where a fault could
   fire.  The same run doubles as the **oracle**: the fault-free
   verdicts every episode is audited against.
2. **Schedule.**  Deterministically derive episode schedules from the
   universe: one episode per single fault point, then seeded sampled
   *pairs* of points of different kinds (correlated failures are where
   recovery code actually breaks), bounded by the episode budget.
3. **Episode.**  Re-run the scenario under a :class:`ScheduledMonkey`
   that fires exactly the scheduled points, then hand the scenario's
   spools and client-observed answers to the
   :mod:`~repro.chaos.auditor`.
4. **Bundle.**  A failing episode dumps a minimal repro bundle (seed,
   schedule, journals, verdicts) that ``repro chaos replay``
   re-executes.

Determinism contract (stated honestly): the fault *plan* — which
points fire in which episode — is a pure function of ``(scenario,
seed, episodes)``.  Episode execution consults the monkey from real
threads, so under concurrency the mapping from a consultation index to
a wall-clock event can shift between runs; the schedule itself, the
injection decisions, and any *logic-bug* violation they expose replay
deterministically.  Timing-dependent violations may need a few replay
runs to re-manifest — the bundle records everything needed to keep
trying.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..obs import METRICS
from ..runtime.chaos import ChaosConfig, ChaosMonkey, inject_faults
from .auditor import Violation, audit_episode
from .report import CampaignReport, EpisodeResult, dump_bundle
from .scenarios import Scenario, ScenarioOutcome, make_scenario

#: One potential fault: the Nth consultation of a chaos kind.
FaultPoint = tuple[str, int]


class ScheduledMonkey(ChaosMonkey):
    """A monkey that fires a *schedule* instead of rolling dice.

    Every consultation site in the tree (solver intercepts, journal
    appends, lease writes, forwards, probes, nemesis points) maps to a
    ``(kind, index)`` pair by counting consultations per kind.  In
    **record** mode nothing fires and the counters enumerate the fault
    universe; in **scheduled** mode consultation *i* of kind *k* fires
    iff ``(k, i)`` is in the schedule.

    Counters are lock-guarded: serve worker threads, router forward
    threads, and lease heartbeats consult concurrently.
    """

    def __init__(self, schedule: Sequence[FaultPoint] = (), *,
                 record: bool = False,
                 config: Optional[ChaosConfig] = None):
        super().__init__(config or ChaosConfig())
        self.schedule = set(
            (str(kind), int(index)) for kind, index in schedule)
        self.record = record
        self.counts: dict[str, int] = {}
        self.fired: list[FaultPoint] = []
        self._consult_lock = threading.Lock()

    # ----- the one decision procedure ---------------------------------------

    def _consult(self, kind: str) -> bool:
        with self._consult_lock:
            index = self.counts.get(kind, 0)
            self.counts[kind] = index + 1
            if self.record or (kind, index) not in self.schedule:
                return False
            self.fired.append((kind, index))
            self.log.schedule.append(f"{kind}@{index}")
        if METRICS.enabled:
            METRICS.counter_inc("repro_chaos_injected_total", kind=kind)
        return True

    def scheduled_kinds(self) -> set[str]:
        return {kind for kind, _ in self.schedule}

    def has_kind(self, kind: str) -> bool:
        return any(k == kind for k, _ in self.schedule)

    # ----- ChaosMonkey surface, counter-driven ------------------------------

    def intercept(self) -> Optional[str]:
        self.log.calls += 1
        if self._consult("delay"):
            self.log.delays += 1
            time.sleep(self.config.delay_seconds)
        if self._consult("fault"):
            self.log.faults += 1
            from ..runtime.chaos import InjectedFault
            raise InjectedFault("scheduled solver fault")
        if self._consult("unknown"):
            self.log.unknowns += 1
            return "unknown"
        return None

    def should_corrupt_proof(self) -> bool:
        fired = self._consult("proof_corrupt")
        if fired:
            self.log.proofs_corrupted += 1
        return fired

    def maybe_io_error(self, where: str) -> None:
        if self._consult("io_error"):
            self.log.io_errors += 1
            raise OSError(f"scheduled I/O error at {where}")

    def should_kill_during_checkpoint(self) -> bool:
        fired = self._consult("kill_checkpoint")
        if fired:
            self.log.checkpoint_kills += 1
        return fired

    def slow_client_delay(self) -> float:
        if self._consult("slow_client"):
            self.log.slow_clients += 1
            return self.config.slow_client_seconds or 0.05
        return 0.0

    def should_kill_request_worker(self) -> bool:
        fired = self._consult("request_kill")
        if fired:
            self.log.request_kills += 1
        return fired

    def should_kill_replica(self) -> bool:
        fired = self._consult("replica_kill")
        if fired:
            self.log.replica_kills += 1
        return fired

    def should_flap_probe(self) -> bool:
        fired = self._consult("probe_flap")
        if fired:
            self.log.probe_flaps += 1
        return fired

    def is_partitioned(self, link: str) -> bool:
        with self._consult_lock:
            active = self._partitions.get(link, 0)
            if active > 0:
                self._partitions[link] = active - 1
                return True
        if self._consult("partition"):
            with self._consult_lock:
                self._partitions[link] = max(
                    0, self.config.partition_span - 1)
            self.log.partitions += 1
            return True
        return False

    def lease_skew(self) -> float:
        if self._consult("lease_skew"):
            self.log.lease_skews += 1
            return self.config.lease_skew_seconds or 60.0
        return 0.0

    def corrupt_cache_text(self, text: str) -> str:
        if self._consult("cache_corrupt"):
            self.log.cache_corrupted += 1
            return text[: len(text) // 2]
        return text

    def nemesis(self, kind: str) -> bool:
        """Scenario-level nemesis points (``replica_down``,
        ``torn_tail``, ``lease_takeover``) fire through the same
        scheduled counters as the in-tree hooks."""
        return self._consult(kind)


# ----- campaign -------------------------------------------------------------


@dataclass
class CampaignConfig:
    """Everything ``repro chaos run`` maps 1:1 onto."""

    scenario: str = "cluster"
    episodes: int = 50
    seed: int = 7
    #: Where failing episodes dump repro bundles.
    bundle_dir: Optional[Path] = None
    #: Scratch space for episode spools (a tempdir when None).
    workdir: Optional[Path] = None
    #: Restrict the universe to these kinds (None = everything the
    #: record run discovered).
    kinds: Optional[Sequence[str]] = None
    #: Stop the campaign at the first failing episode.
    fail_fast: bool = False


def enumerate_points(counts: dict[str, int],
                     kinds: Optional[Sequence[str]] = None,
                     extra: Sequence[FaultPoint] = ()) -> list[FaultPoint]:
    """The fault universe: every ``(kind, index)`` the record run
    consulted, plus scenario-declared extra points, deterministically
    ordered (kind-alphabetical, then index)."""
    allowed = set(kinds) if kinds is not None else None
    points: list[FaultPoint] = []
    for kind in sorted(counts):
        if allowed is not None and kind not in allowed:
            continue
        points.extend((kind, i) for i in range(counts[kind]))
    for kind, index in extra:
        if allowed is not None and kind not in allowed:
            continue
        if (kind, index) not in points:
            points.append((kind, index))
    return points


def build_schedules(points: Sequence[FaultPoint], episodes: int,
                    seed: int,
                    seeded: Sequence[Sequence[FaultPoint]] = (),
                    ) -> list[list[FaultPoint]]:
    """Derive the episode plan, deterministically:

    1. the scenario's *seeded* schedules — correlated cases the
       campaign must not miss (only when every point exists in the
       universe);
    2. singles, round-robin across kinds (index 0 of every kind, then
       index 1, …) so a budget smaller than the universe still touches
       every fault kind instead of exhausting the alphabet's first;
    3. sampled pairs of different kinds from ``seed``.

    Pure function of its arguments."""
    import random

    universe = set(points)
    schedules: list[list[FaultPoint]] = []
    for combo in seeded:
        if len(schedules) >= episodes:
            break
        combo = [tuple(p) for p in combo]
        if all(p in universe for p in combo):
            schedules.append(combo)
    by_kind: dict[str, list[FaultPoint]] = {}
    for kind, index in points:
        by_kind.setdefault(kind, []).append((kind, index))
    for row in by_kind.values():
        row.sort(key=lambda p: p[1])
    depth = 0
    while len(schedules) < episodes:
        added = False
        for kind in sorted(by_kind):
            row = by_kind[kind]
            if depth < len(row):
                schedules.append([row[depth]])
                added = True
                if len(schedules) >= episodes:
                    break
        if not added:
            break
        depth += 1
    rng = random.Random(seed)
    guard = 0
    seen_pairs: set[tuple[FaultPoint, FaultPoint]] = set()
    for combo in schedules:
        if len(combo) == 2:
            a, b = combo
            seen_pairs.add((a, b) if a <= b else (b, a))
    while len(schedules) < episodes and len(points) >= 2:
        guard += 1
        if guard > episodes * 20:
            break  # tiny universes can't fill a big budget with pairs
        a, b = rng.sample(list(points), 2)
        if a[0] == b[0]:
            continue  # pairs mix kinds; same-kind doubles add little
        pair = (a, b) if a <= b else (b, a)
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        schedules.append([pair[0], pair[1]])
    return schedules


class ChaosCampaign:
    """Drives record → schedule → episodes → audit for one scenario."""

    def __init__(self, config: CampaignConfig,
                 echo: Callable[[str], None] = lambda line: None):
        self.config = config
        self.echo = echo
        self.scenario: Scenario = make_scenario(config.scenario)

    def run(self) -> CampaignReport:
        cfg = self.config
        base = Path(cfg.workdir) if cfg.workdir else Path(
            tempfile.mkdtemp(prefix="repro-chaos-"))
        base.mkdir(parents=True, exist_ok=True)
        owns_base = cfg.workdir is None

        oracle, counts = self._record(base / "oracle")
        extra = self.scenario.extra_points()
        points = enumerate_points(counts, cfg.kinds, extra)
        schedules = build_schedules(
            points, cfg.episodes, cfg.seed,
            seeded=self.scenario.seed_schedules())
        self.echo(
            f"fault universe: {len(points)} points across "
            f"{len(set(k for k, _ in points))} kinds; "
            f"running {len(schedules)} episodes")

        report = CampaignReport(
            scenario=cfg.scenario, seed=cfg.seed,
            universe=[list(p) for p in points],
            oracle_verdicts=dict(oracle.verdicts()),
        )
        try:
            for index, schedule in enumerate(schedules):
                episode = self._episode(base, index, schedule, oracle)
                report.add(episode)
                label = ",".join(f"{k}@{i}" for k, i in schedule)
                if episode.violations:
                    names = {v.invariant for v in episode.violations}
                    self.echo(
                        f"episode {index:03d} [{label}] RED: "
                        f"{', '.join(sorted(names))}"
                        + (f" -> {episode.bundle}" if episode.bundle
                           else ""))
                    if cfg.fail_fast:
                        break
                else:
                    self.echo(f"episode {index:03d} [{label}] ok")
        finally:
            if owns_base and not report.failed:
                shutil.rmtree(base, ignore_errors=True)
        return report

    # ----- phases -----------------------------------------------------------

    def _record(self, workdir: Path) -> tuple[ScenarioOutcome,
                                              dict[str, int]]:
        """The fault-free oracle run, counting every consultation."""
        monkey = ScheduledMonkey(record=True)
        workdir.mkdir(parents=True, exist_ok=True)
        with inject_faults(monkey=monkey):
            outcome = self.scenario.run(monkey, workdir)
        return outcome, dict(monkey.counts)

    def _episode(self, base: Path, index: int,
                 schedule: list[FaultPoint],
                 oracle: ScenarioOutcome) -> EpisodeResult:
        workdir = base / f"ep{index:03d}"
        workdir.mkdir(parents=True, exist_ok=True)
        monkey = ScheduledMonkey(schedule, config=ChaosConfig(
            seed=self.config.seed))
        violations: list[Violation]
        with inject_faults(monkey=monkey):
            outcome = self.scenario.run(monkey, workdir)
        violations = audit_episode(
            outcome, oracle=oracle,
            schedule_kinds=monkey.scheduled_kinds())
        episode = EpisodeResult(
            index=index, schedule=[list(p) for p in schedule],
            fired=[list(p) for p in monkey.fired],
            answers=outcome.answers, violations=violations,
        )
        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_chaos_episodes_total",
                scenario=self.config.scenario,
                outcome="red" if violations else "green")
            for violation in violations:
                METRICS.counter_inc(
                    "repro_chaos_violations_total",
                    invariant=violation.invariant)
        if violations:
            bundle_root = (Path(self.config.bundle_dir)
                           if self.config.bundle_dir
                           else base / "bundles")
            episode.bundle = dump_bundle(
                bundle_root, scenario=self.config.scenario,
                seed=self.config.seed, episode=episode,
                outcome=outcome, oracle=oracle)
        else:
            shutil.rmtree(workdir, ignore_errors=True)
        return episode


def run_campaign(config: CampaignConfig,
                 echo: Callable[[str], None] = lambda line: None
                 ) -> CampaignReport:
    """Module-level entry point (what the CLI calls)."""
    return ChaosCampaign(config, echo).run()
