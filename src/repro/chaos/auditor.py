"""The durability invariant auditor.

After every chaos episode the auditor cross-checks the scenario's
spools and client-observed answers against the durability contract the
persistence and cluster layers claim to provide.  Each check is a pure
function over on-disk journals plus the episode's observations —
nothing here talks to a live service, which is what makes a dumped
bundle re-auditable offline.

Invariants (names are what ``repro chaos`` prints and what the
``repro_chaos_violations_total`` metric labels):

``journal_clean``
    Every journal replays without *mid-file* corruption.  A torn final
    line is the legitimate crash-during-append window (replay truncates
    it); a bad record with good records after it means framing or the
    fence failed.
``no_lost_jobs``
    Every job the client got a definitive verdict for is journaled in
    at least one spool.  Skipped when the episode injected ``io_error``
    (journal writes were deliberately dropped — the runner's in-memory
    degradation is a different contract).
``durable_verdicts``
    Stronger: every definitive client verdict has a journaled ``done``
    record somewhere.  Skipped under faults that legitimately destroy
    or fence tail writes (io_error, torn_tail, replica_down,
    lease_skew).
``no_duplicate_solves``
    At-most-once *solving* per idempotency key.  Two non-adopted
    ``done`` records for one job in one spool is always a violation.
    Across spools it is a violation unless the episode injected a
    response-loss fault (partition, replica_kill, replica_down,
    slow_client, request_kill, torn_tail) — failover after a lost
    response re-solves by design (at-least-once), and the journals
    record both solves honestly.
``single_lease_owner``
    At scenario end, at most one live process claims each spool lease.
``no_stale_epoch_writes``
    Journal state records carry the writer's lease epoch; in append
    order the epoch must never decrease.  A write stamped with an
    older epoch is from a zombie owner that lost a takeover — the
    write fence failed.
``verdicts_match_oracle``
    Every definitive client verdict equals the fault-free oracle's.
    Never gated: chaos may degrade an answer to UNKNOWN or an error,
    but a *wrong* definitive verdict is always a bug.
``trace_continuity``
    The trace id journaled at submission matches the trace id the
    client observed for that job — the recovery path must keep joining
    the original request's trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from ..persist.journal import _unframe

#: Fault kinds after which a failed-over request may legitimately be
#: solved on two replicas (the response, not the solve, was lost).
RESPONSE_LOSS_KINDS = frozenset((
    "partition", "replica_kill", "replica_down", "slow_client",
    "request_kill", "torn_tail", "probe_flap",
))

#: Fault kinds that legitimately drop or destroy journal tail writes.
WRITE_LOSS_KINDS = frozenset((
    "io_error", "torn_tail", "replica_down", "lease_skew",
    "kill_checkpoint", "worker_crash",
))

DEFINITIVE = ("proved", "violated")


@dataclass
class Violation:
    """One broken invariant, with enough context to chase it."""

    invariant: str
    detail: str
    spool: Optional[str] = None
    job_id: Optional[str] = None

    def to_json(self) -> dict:
        doc = {"invariant": self.invariant, "detail": self.detail}
        if self.spool:
            doc["spool"] = self.spool
        if self.job_id:
            doc["job_id"] = self.job_id
        return doc


@dataclass
class SpoolScan:
    """One journal, decoded in append order."""

    name: str
    records: list = field(default_factory=list)
    #: Indices (0-based, over non-empty lines) that failed to unframe.
    bad_lines: list = field(default_factory=list)
    total_lines: int = 0


def scan_spool(name: str, directory: Path) -> SpoolScan:
    """Decode a spool's journal without the replay()'s truncation —
    the auditor wants to *see* corruption, not repair it."""
    from ..persist.batch import BatchRunner

    scan = SpoolScan(name=name)
    path = Path(directory) / BatchRunner.JOURNAL
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return scan
    lines = [line for line in raw.split("\n") if line.strip()]
    scan.total_lines = len(lines)
    for index, line in enumerate(lines):
        try:
            scan.records.append(_unframe(line))
        except ValueError:
            scan.bad_lines.append(index)
    return scan


def audit_spools(
    spools: dict[str, Path],
    *,
    answers: Optional[dict[str, dict]] = None,
    oracle_verdicts: Optional[dict[str, str]] = None,
    schedule_kinds: Iterable[str] = (),
    live_claims: Optional[dict[str, list]] = None,
) -> list[Violation]:
    """Run every invariant over the given spools; returns violations
    (empty = green).  This is the offline core — ``audit_episode``
    adapts a live :class:`~repro.chaos.scenarios.ScenarioOutcome`."""
    kinds = set(schedule_kinds)
    answers = answers or {}
    violations: list[Violation] = []
    scans = {name: scan_spool(name, path)
             for name, path in spools.items()}

    # -- journal_clean -------------------------------------------------------
    for name, scan in scans.items():
        for index in scan.bad_lines:
            if index == scan.total_lines - 1:
                continue  # torn tail: the legitimate crash window
            violations.append(Violation(
                "journal_clean",
                f"journal line {index + 1}/{scan.total_lines} is "
                f"corrupt with valid records after it",
                spool=name))

    # -- per-job record indexes ----------------------------------------------
    #: job_id → spool names with a submit record.
    known: dict[str, set] = {}
    #: job_id → spool → count of non-adopted done records.
    solves: dict[str, dict[str, int]] = {}
    #: job_id → spool → submit trace id.
    traces: dict[str, dict[str, str]] = {}
    for name, scan in scans.items():
        max_epoch = 0
        for rec in scan.records:
            if not isinstance(rec, dict):
                continue
            job_id = rec.get("id")
            if rec.get("kind") == "submit" and job_id:
                known.setdefault(job_id, set()).add(name)
                trace = rec.get("trace")
                if trace:
                    from ..obs.tracer import parse_traceparent

                    parsed = parse_traceparent(trace)
                    if parsed:
                        traces.setdefault(job_id, {})[name] = parsed[0]
            elif rec.get("kind") == "state" and job_id:
                known.setdefault(job_id, set()).add(name)
                epoch = rec.get("epoch")
                if isinstance(epoch, int):
                    if epoch < max_epoch:
                        violations.append(Violation(
                            "no_stale_epoch_writes",
                            f"state write by {rec.get('by')!r} carries "
                            f"epoch {epoch} after epoch {max_epoch} "
                            f"was journaled — zombie owner wrote "
                            f"through the fence",
                            spool=name, job_id=job_id))
                    else:
                        max_epoch = epoch
                if (rec.get("state") == "done"
                        and not rec.get("adopted_from")):
                    per = solves.setdefault(job_id, {})
                    per[name] = per.get(name, 0) + 1

    # -- no_duplicate_solves -------------------------------------------------
    for job_id, per_spool in solves.items():
        for name, count in per_spool.items():
            if count >= 2:
                violations.append(Violation(
                    "no_duplicate_solves",
                    f"{count} non-adopted done records in one spool "
                    f"for one idempotency key",
                    spool=name, job_id=job_id))
        if len(per_spool) >= 2 and not (kinds & RESPONSE_LOSS_KINDS):
            violations.append(Violation(
                "no_duplicate_solves",
                f"job solved independently on {sorted(per_spool)} "
                f"with no response-loss fault to excuse the failover",
                job_id=job_id))

    # -- no_lost_jobs / durable_verdicts -------------------------------------
    definitive = {
        job_id: answer["verdict"]
        for job_id, answer in answers.items()
        if answer.get("verdict") in DEFINITIVE
    }
    if "io_error" not in kinds:
        for job_id in definitive:
            if job_id not in known:
                violations.append(Violation(
                    "no_lost_jobs",
                    "client holds a definitive verdict but no spool "
                    "journaled the job at all",
                    job_id=job_id))
    if not (kinds & WRITE_LOSS_KINDS):
        done_somewhere = {
            job_id for job_id, per_spool in solves.items() if per_spool
        }
        for name, scan in scans.items():
            for rec in scan.records:
                if (isinstance(rec, dict) and rec.get("kind") == "state"
                        and rec.get("state") == "done"):
                    done_somewhere.add(rec.get("id"))
        for job_id in definitive:
            if job_id not in done_somewhere:
                violations.append(Violation(
                    "durable_verdicts",
                    "definitive client verdict has no journaled done "
                    "record in any spool",
                    job_id=job_id))

    # -- single_lease_owner --------------------------------------------------
    for name, claimants in (live_claims or {}).items():
        if len(claimants) > 1:
            violations.append(Violation(
                "single_lease_owner",
                f"{sorted(claimants)} all believe they hold the lease",
                spool=name))

    # -- verdicts_match_oracle -----------------------------------------------
    for job_id, verdict in definitive.items():
        expected = (oracle_verdicts or {}).get(job_id)
        if expected in DEFINITIVE and verdict != expected:
            violations.append(Violation(
                "verdicts_match_oracle",
                f"client saw {verdict!r}, fault-free oracle says "
                f"{expected!r}",
                job_id=job_id))

    # -- trace_continuity ----------------------------------------------------
    for job_id, answer in answers.items():
        client_trace = answer.get("trace_id")
        if not client_trace:
            continue
        for name, journaled in traces.get(job_id, {}).items():
            if journaled != client_trace:
                violations.append(Violation(
                    "trace_continuity",
                    f"journaled submit trace {journaled} != client "
                    f"trace {client_trace}",
                    spool=name, job_id=job_id))
    return violations


def audit_episode(outcome, *, oracle=None,
                  schedule_kinds: Iterable[str] = ()) -> list[Violation]:
    """Audit one scenario run against its fault-free oracle."""
    return audit_spools(
        outcome.spools,
        answers=outcome.answers,
        oracle_verdicts=oracle.verdicts() if oracle else None,
        schedule_kinds=schedule_kinds,
        live_claims=outcome.live_claims,
    )
