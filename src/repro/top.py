"""``repro top`` — live solver introspection, htop-style.

Attaches to either face of the system and refreshes one screen in
place:

* ``repro top HOST:PORT`` — a running ``repro serve`` instance: the
  control plane from ``/healthz`` (overload level, queue, breaker)
  plus the job table from ``/v1/jobs``, each running job annotated
  with its latest :class:`~repro.obs.progress.SolveProgress` beacon
  (conflicts, propagation rate, learnt-DB size, phase context);
* ``repro top DIR`` — a batch/spool directory, no server needed: the
  journaled job table via :meth:`BatchRunner.status` plus the beacon
  mirrors under ``DIR/progress/`` — this works *while* a ``repro
  batch run`` is executing in another process, and after a crash.

``--once`` prints a single frame and exits (scripts, CI); the exit
code is 0 either way — ``top`` is a viewer, not a health check.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Any, Callable, Optional

#: Longest reconnect backoff: a dead target is re-tried at least this
#: often, so a restarted server shows up within seconds.
_RECONNECT_CAP = 8.0

#: State → single-glyph marker, in the order rows are sorted.
_STATE_ORDER = {"running": 0, "orphaned": 1, "pending": 2, "failed": 3,
                "done": 4, "deadletter": 5}
_STATE_MARK = {"running": "▶", "orphaned": "✗", "pending": "·",
               "failed": "!", "done": "✓", "deadletter": "†"}


def _fmt_rate(value: Any) -> str:
    try:
        v = float(value)
    except (TypeError, ValueError):
        return "-"
    if v >= 1e6:
        return f"{v / 1e6:.1f}M/s"
    if v >= 1e3:
        return f"{v / 1e3:.1f}k/s"
    return f"{v:.0f}/s"


def _fmt_count(value: Any) -> str:
    try:
        v = int(value)
    except (TypeError, ValueError):
        return "-"
    if v >= 1_000_000:
        return f"{v / 1e6:.1f}M"
    if v >= 10_000:
        return f"{v / 1e3:.0f}k"
    return str(v)


def _fmt_phase(phase: Any) -> str:
    if not isinstance(phase, dict) or not phase:
        return ""
    return " ".join(f"{k}={v}" for k, v in sorted(phase.items()))


def _progress_cell(sample: Optional[dict]) -> str:
    if not sample:
        return ""
    parts = [
        f"cfl {_fmt_count(sample.get('conflicts'))}",
        f"{_fmt_rate(sample.get('props_per_s'))} props",
        f"learnt {_fmt_count(sample.get('learnt'))}",
        f"rst {_fmt_count(sample.get('restarts'))}",
    ]
    phase = _fmt_phase(sample.get("phase"))
    if phase:
        parts.append(phase)
    return "  ".join(parts)


def _job_rows(jobs: list[dict],
              progress_for: Callable[[dict], Optional[dict]]) -> list[str]:
    rows = []
    jobs = sorted(jobs, key=lambda j: (
        _STATE_ORDER.get(j.get("state"), 9), j.get("label") or ""))
    for job in jobs:
        state = str(job.get("state") or "?")
        mark = _STATE_MARK.get(state, "?")
        label = str(job.get("label") or job.get("job_id", "?")[:12])[:28]
        verdict = job.get("verdict") or ""
        detail = _progress_cell(progress_for(job))
        if not detail and job.get("error"):
            detail = str(job["error"])[:60]
        rows.append(f" {mark} {label:<28} {state:<10} {verdict:<10} {detail}")
    return rows


# ----- the two frame sources ------------------------------------------------


def _serve_frame(client) -> list[str]:
    """One screen's lines from a live ``repro serve`` instance."""
    health = client.health()
    index = client.jobs()
    counts = index.get("counts") or {}
    summary = ", ".join(
        f"{counts[s]} {s}" for s in sorted(counts, key=lambda s: (
            _STATE_ORDER.get(s, 9), s)) if counts.get(s)
    ) or "no jobs"
    lines = [
        f"repro top — serve http://{client.host}:{client.port}"
        f"  [{health.get('state', '?')}]",
        f" level {health.get('level', '?')}"
        f"  queued {health.get('queued', '?')}"
        f"/{health.get('queue_limit', '?')}"
        f"  running {health.get('running', '?')}"
        f"  breaker {((health.get('breaker') or {}).get('state', '?'))}"
        f"  uptime {health.get('uptime_seconds', 0):.0f}s",
        f" jobs: {summary}",
        "",
    ]
    lines.extend(_job_rows(
        index.get("jobs") or [],
        lambda job: job.get("progress"),
    ))
    return lines


def _dir_frame(directory: Path) -> list[str]:
    """One screen's lines from a spool/batch directory (no server)."""
    from .obs.progress import ProgressBook
    from .persist.batch import BatchRunner

    with BatchRunner(directory) as runner:
        report = runner.status().to_json()
    mirrors = ProgressBook.read_dir(directory / "progress")
    counts = report.get("counts") or {}
    summary = ", ".join(
        f"{counts[s]} {s}" for s in sorted(counts, key=lambda s: (
            _STATE_ORDER.get(s, 9), s)) if counts.get(s)
    ) or "no jobs"
    lines = [
        f"repro top — spool {directory}",
        f" jobs: {summary}",
        "",
    ]
    lines.extend(_job_rows(
        report.get("jobs") or [],
        lambda job: (mirrors.get(job.get("job_id", "")) or {}).get("latest"),
    ))
    return lines


# ----- the loop -------------------------------------------------------------


def _parse_target(target: str):
    """``HOST:PORT`` (or ``http://HOST:PORT``) → client; else a Path."""
    stripped = target
    for prefix in ("http://", "https://"):
        if stripped.startswith(prefix):
            stripped = stripped[len(prefix):].rstrip("/")
    host, sep, port = stripped.rpartition(":")
    if sep and port.isdigit() and "/" not in stripped:
        from .client import ServiceClient

        return ServiceClient(host or "127.0.0.1", int(port))
    return Path(target)


def run_top(
    target: str,
    *,
    interval: float = 1.0,
    once: bool = False,
    iterations: Optional[int] = None,
    out=None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """The ``repro top`` loop; returns an exit code.

    ``iterations`` bounds the refresh loop (tests); interactive runs
    leave it ``None`` and exit via Ctrl-C.

    A serve target that restarts or refuses connections does not kill
    the viewer: the loop keeps the last good frame on screen under a
    ``[reconnecting]`` header and retries under exponential backoff
    (capped at ``_RECONNECT_CAP``), resetting to the normal refresh
    interval on the first successful frame — ``top`` outliving its
    target is the whole point of a monitoring view.
    """
    out = out or sys.stdout
    source = _parse_target(target)
    if isinstance(source, Path) and not source.is_dir():
        print(f"error: {target!r} is neither HOST:PORT nor a directory",
              file=sys.stderr)
        return 4
    shown = 0
    fail_streak = 0
    last_good: Optional[list[str]] = None
    try:
        while True:
            try:
                if isinstance(source, Path):
                    lines = _dir_frame(source)
                else:
                    lines = _serve_frame(source)
                fail_streak = 0
                last_good = lines
            except Exception as exc:
                fail_streak += 1
                header = (f"repro top — {target}"
                          f"  [reconnecting #{fail_streak}: {exc}]")
                if last_good is not None:
                    # Keep the last good frame's body visible; only the
                    # header says the feed is stale.
                    lines = [header] + last_good[1:]
                else:
                    lines = [header]
            if not once:
                out.write("\x1b[H\x1b[2J")  # home + clear: refresh in place
            out.write("\n".join(lines) + "\n")
            out.flush()
            shown += 1
            if once or (iterations is not None and shown >= iterations):
                return 0
            if fail_streak:
                delay = min(_RECONNECT_CAP,
                            max(0.1, interval) * (2 ** (fail_streak - 1)))
                sleep(delay)
            else:
                sleep(max(0.1, interval))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
