"""Metrics registry: counters, gauges, and histograms with labels.

Named series absorb the solver-internal statistics that used to live
in private dataclasses — :class:`~repro.smt.sat.cdcl.SatStats`, the
engine cache's :class:`~repro.engine.cache.CacheStats`, incremental
push/pop reuse, chaos-injection counts — so one Prometheus scrape (or
one ``repro stats`` call) sees the whole pipeline.

Series are keyed by ``(name, frozenset(labels.items()))``.  The
registry is disabled by default and every mutator begins with an
``enabled`` guard so instrumented hot paths cost one attribute load
and one branch when telemetry is off.

Cross-process story: portfolio workers run their own (module-global)
registry, :meth:`snapshot` it after each task, and the parent
:meth:`merge`\\ s the snapshot — counters add, gauges last-write-wins,
histograms merge bucket-wise.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

#: Default histogram bucket upper bounds (seconds-oriented, powers of 4).
DEFAULT_BUCKETS = (0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384)

#: Metric name → ``# HELP`` text.  Real scrapers want a HELP line per
#: series; names absent here still get one, generated from the name by
#: :func:`help_text`.  Extend via :func:`register_help`.
_HELP: dict[str, str] = {
    # engine cache
    "repro_cache_hits_total": "Result-cache hits, by tier (memory/disk).",
    "repro_cache_misses_total": "Result-cache misses.",
    "repro_cache_stores_total": "Result-cache entries stored.",
    "repro_cache_corrupt_entries_total":
        "On-disk cache entries rejected by checksum or schema.",
    "repro_cache_hit_ratio":
        "Derived at export: hits / (hits + misses) across tiers.",
    # CDCL core
    "repro_cdcl_solves_total": "CDCL solve() invocations.",
    "repro_cdcl_conflicts_total": "CDCL conflicts analyzed.",
    "repro_cdcl_decisions_total": "CDCL decisions made.",
    "repro_cdcl_propagations_total": "CDCL unit propagations.",
    "repro_cdcl_learned_total": "Clauses learned from conflicts.",
    "repro_cdcl_deleted_total": "Learned clauses deleted by reduction.",
    "repro_cdcl_minimized_lits_total":
        "Literals removed by learned-clause minimization.",
    "repro_cdcl_restarts_total": "CDCL restarts.",
    "repro_cdcl_inprocessings_total":
        "Inprocessing rounds (subsumption/vivification/elimination).",
    "repro_cdcl_subsumed_total": "Clauses removed by subsumption.",
    "repro_cdcl_strengthened_total":
        "Clauses strengthened by self-subsumption.",
    "repro_cdcl_eliminated_total":
        "Variables removed by bounded variable elimination.",
    "repro_cdcl_vivified_lits_total":
        "Literals removed by clause vivification.",
    "repro_solver_checks_total": "SmtSolver.check() calls, by result.",
    "repro_vcs_total": "Verification conditions discharged.",
    # incremental engine
    "repro_incremental_checks_total":
        "Incremental-session check() calls, by reuse kind.",
    "repro_incremental_frames_pushed_total":
        "Assertion frames pushed onto incremental sessions.",
    "repro_incremental_frames_retired_total":
        "Assertion frames popped from incremental sessions.",
    "repro_incremental_clauses_reused_total":
        "CNF clauses reused across incremental checks.",
    # parallel engine / pool supervision
    "repro_parallel_tasks_total": "Portfolio tasks dispatched to workers.",
    "repro_parallel_cancelled_total":
        "Portfolio slots cooperatively cancelled.",
    "repro_engine_workers_respawned_total":
        "Workers respawned after dying or hanging.",
    "repro_engine_requeued_total":
        "Tasks re-dispatched after losing their worker.",
    "repro_engine_quarantined_total":
        "Queries quarantined after repeated worker loss.",
    # trust layer
    "repro_trust_proofs_checked_total": "DRAT certificates checked.",
    "repro_trust_proofs_failed_total": "DRAT certificates rejected.",
    # chaos harness
    "repro_chaos_injected_total": "Faults injected by the chaos monkey, by kind.",
    # persistence
    "repro_persist_journal_records_total": "Write-ahead journal appends.",
    "repro_persist_journal_bytes_total": "Bytes appended to the journal.",
    "repro_persist_io_errors_total":
        "Persistence writes degraded to metrics after OSError, by site.",
    "repro_persist_torn_tail_truncations_total":
        "Journal torn tails truncated during replay.",
    "repro_persist_snapshot_corrupt_total":
        "Snapshots rejected by checksum at load.",
    "repro_persist_compactions_total": "Journal-to-snapshot compactions.",
    "repro_persist_jobs_submitted_total": "Batch jobs journaled.",
    "repro_persist_jobs_done_total": "Batch jobs finished with a verdict.",
    "repro_persist_retries_total": "Batch job transient-failure retries.",
    "repro_persist_deadletters_total": "Batch jobs parked in the deadletter state.",
    "repro_persist_recoveries_total":
        "Interrupted batch jobs requeued after a crash.",
    "repro_checkpoint_saves_total": "Solver checkpoints saved.",
    "repro_checkpoint_restores_total": "Solver checkpoints restored.",
    "repro_checkpoint_corrupt_total": "Solver checkpoints rejected at load.",
    "repro_checkpoint_learnts_restored_total":
        "Learned clauses reinstated from checkpoints.",
    # observability
    "repro_obs_export_errors_total":
        "Telemetry exports degraded after OSError, by exporter.",
    "repro_span_seconds": "Span wall-clock durations, by span name.",
    # serve control plane
    "repro_serve_requests_total": "Analysis requests received, by tenant.",
    "repro_serve_rejected_total":
        "Requests rejected by admission, by reason and tenant.",
    "repro_serve_replayed_total":
        "Requests answered from the journal's existing verdict.",
    "repro_serve_fast_unknown_total":
        "Requests answered with a fast UNKNOWN, by cause.",
    "repro_serve_queue_depth": "Admitted requests waiting for a worker.",
    "repro_serve_inflight": "Requests currently executing.",
    "repro_serve_overload_level":
        "Overload ladder rung: 0 normal, 1 degraded, 2 shedding.",
    "repro_serve_breaker_state":
        "Circuit breaker: 0 closed, 1 half-open, 2 open.",
    "repro_serve_breaker_trips_total": "Circuit breaker trips.",
    "repro_serve_drains_total": "Graceful drains initiated.",
    "repro_serve_request_seconds": "End-to-end request service time.",
    "repro_serve_probe_lost_total":
        "Requests bounced 503 after losing the half-open probe race.",
    # cluster (router + registry + handoff)
    "repro_cluster_requests_total": "Requests received by the shard router.",
    "repro_cluster_failovers_total":
        "Forwards re-routed to the next ring node, by failed replica.",
    "repro_cluster_hedges_total":
        "Hedged second requests fired after hedge_seconds of silence.",
    "repro_cluster_probe_seconds": "Replica health-probe latency.",
    "repro_cluster_replica_state":
        "Replica health: 0 healthy, 1 probing, 2 ejected.",
    "repro_cluster_ejections_total":
        "Replicas ejected after consecutive failures, by replica.",
    "repro_cluster_readmissions_total":
        "Ejected replicas re-admitted after a good probe, by replica.",
    "repro_cluster_handoffs_total":
        "Journal handoffs started for dead replicas' spools.",
    "repro_cluster_handoff_jobs_total":
        "Jobs finished during handoff, by mode (adopted/resolved).",
    "repro_cluster_handoff_refused_total":
        "Handoffs refused because the spool lease was still fresh.",
    "repro_cluster_handoff_errors_total":
        "Handoff attempts that raised (spool left for manual resume).",
    # spool ownership leases
    "repro_persist_lease_takeovers_total":
        "Spool leases taken over from a stale or released owner.",
    "repro_persist_lease_lost_total":
        "Lease renewals refused because another owner took the spool.",
    "repro_persist_jobs_adopted_total":
        "Batch jobs finished by adopting a peer replica's verdict.",
    "repro_persist_fenced_writes_total":
        "Journal writes dropped because the spool lease moved to"
        " another owner (zombie-writer fence).",
    "repro_serve_lease_reacquired_total":
        "Spool leases reacquired by their replica after a handoff"
        " released them (fence lifted).",
    # chaos campaigns
    "repro_chaos_episodes_total":
        "Chaos campaign episodes executed, by scenario and outcome.",
    "repro_chaos_violations_total":
        "Durability invariant violations found by the chaos auditor,"
        " by invariant.",
}


def register_help(name: str, text: str) -> None:
    """Attach ``# HELP`` text to a metric name (idempotent overwrite)."""
    _HELP[name] = text


def help_text(name: str) -> str:
    """The HELP line body for ``name`` (generated when unregistered)."""
    text = _HELP.get(name)
    if text:
        return text
    words = name.removeprefix("repro_").removesuffix("_total")
    return f"repro {words.replace('_', ' ')}."

LabelKey = "tuple[tuple[str, str], ...]"


def _label_key(labels: dict) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Histogram:
    __slots__ = ("count", "total", "min", "max", "buckets", "bounds")

    def __init__(self, bounds=DEFAULT_BUCKETS):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # +inf bucket last

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def merge(self, other: "_Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if self.bounds == other.bounds:
            for i, n in enumerate(other.buckets):
                self.buckets[i] += n
        else:  # pragma: no cover - all registries share DEFAULT_BUCKETS
            self.buckets[-1] += other.count

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "_Histogram":
        h = cls(bounds=tuple(data.get("bounds", DEFAULT_BUCKETS)))
        h.count = int(data["count"])
        h.total = float(data["sum"])
        h.min = float("inf") if data.get("min") is None else float(data["min"])
        h.max = float("-inf") if data.get("max") is None else float(data["max"])
        h.buckets = [int(n) for n in data["buckets"]]
        return h


class MetricsRegistry:
    """Process-local registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self.enabled = False
        #: Role tag stamped onto solver-core series ("main" in the parent
        #: process, "worker" inside portfolio workers) so merged output
        #: keeps worker-attributed series distinguishable.
        self.proc = "main"
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, _Histogram] = {}

    # ----- mutators (all guarded on .enabled) -------------------------------

    def counter_inc(self, name: str, n: float = 1, **labels: Any) -> None:
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0) + n

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        self._gauges[(name, _label_key(labels))] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = _Histogram()
        hist.observe(value)

    # ----- reads ------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        return self._counters.get((name, _label_key(labels)), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return self._gauges.get((name, _label_key(labels)))

    # ----- lifecycle --------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ----- aggregation ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Picklable/JSON-able dump of every series."""
        return {
            "counters": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ],
            "histograms": [
                {"name": name, "labels": dict(labels), **hist.to_dict()}
                for (name, labels), hist in sorted(self._histograms.items())
            ],
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; gauges last-write-wins; histograms merge.
        """
        for item in snapshot.get("counters", ()):
            key = (item["name"], _label_key(item.get("labels") or {}))
            self._counters[key] = self._counters.get(key, 0) + item["value"]
        for item in snapshot.get("gauges", ()):
            key = (item["name"], _label_key(item.get("labels") or {}))
            self._gauges[key] = item["value"]
        for item in snapshot.get("histograms", ()):
            key = (item["name"], _label_key(item.get("labels") or {}))
            incoming = _Histogram.from_dict(item)
            existing = self._histograms.get(key)
            if existing is None:
                self._histograms[key] = incoming
            else:
                existing.merge(incoming)

    # ----- export -----------------------------------------------------------

    def to_prometheus(self) -> str:
        """Render every series in the Prometheus text exposition format."""
        lines: list[str] = []

        def fmt_labels(labels: tuple, extra: Iterable = ()) -> str:
            parts = [f'{k}="{_escape(v)}"' for k, v in labels]
            parts.extend(f'{k}="{_escape(v)}"' for k, v in extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        seen_types: set[str] = set()

        def typ(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                # HELP precedes TYPE, once per metric family; HELP text
                # escapes only backslash and newline (label values
                # additionally escape double quotes).
                doc = help_text(name).replace("\\", "\\\\")
                doc = doc.replace("\n", "\\n")
                lines.append(f"# HELP {name} {doc}")
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), value in sorted(self._counters.items()):
            typ(name, "counter")
            lines.append(f"{name}{fmt_labels(labels)} {_num(value)}")
        for (name, labels), value in sorted(self._gauges.items()):
            typ(name, "gauge")
            lines.append(f"{name}{fmt_labels(labels)} {_num(value)}")
        for (name, labels), hist in sorted(self._histograms.items()):
            typ(name, "histogram")
            cumulative = 0
            for bound, n in zip(hist.bounds, hist.buckets):
                cumulative += n
                lines.append(
                    f"{name}_bucket"
                    f"{fmt_labels(labels, [('le', _num(bound))])} {cumulative}"
                )
            lines.append(
                f"{name}_bucket{fmt_labels(labels, [('le', '+Inf')])} "
                f"{hist.count}"
            )
            lines.append(f"{name}_sum{fmt_labels(labels)} {_num(hist.total)}")
            lines.append(f"{name}_count{fmt_labels(labels)} {hist.count}")
        return "\n".join(lines) + "\n" if lines else ""


def _escape(value: Any) -> str:
    return (str(value).replace("\\", "\\\\")
            .replace('"', '\\"').replace("\n", "\\n"))


def _num(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


#: The process-wide registry. Mutated in place, never replaced.
METRICS = MetricsRegistry()
