"""repro.obs — zero-dependency tracing, metrics, and profiling.

Usage (library)::

    from repro.obs import telemetry, TRACER, METRICS

    with telemetry():                   # enable for one run
        outcome = repro.analyze(...)
    outcome.telemetry.write_chrome_trace("trace.json")

Usage (CLI)::

    repro analyze model.buffy --trace trace.json --metrics metrics.prom
    repro stats trace.json

Both singletons start disabled; instrumented call sites pay one
attribute load + branch when telemetry is off (see the guard test in
``tests/test_obs.py``).
"""

from __future__ import annotations

from contextlib import contextmanager

from .tracer import (
    TRACER,
    Span,
    SpanRecord,
    Tracer,
    format_traceparent,
    make_traceparent,
    parse_traceparent,
    span_tree,
)
from .metrics import METRICS, MetricsRegistry
from .progress import (
    BEACON,
    ProgressBeacon,
    ProgressBook,
    SolveProgress,
    phase_scope,
    progress_scope,
)
from .export import (
    TelemetrySnapshot,
    load_chrome_trace,
    snapshot_from_chrome_trace,
)

__all__ = [
    "TRACER",
    "METRICS",
    "BEACON",
    "Tracer",
    "Span",
    "SpanRecord",
    "MetricsRegistry",
    "ProgressBeacon",
    "ProgressBook",
    "SolveProgress",
    "TelemetrySnapshot",
    "telemetry",
    "enable",
    "disable",
    "reset",
    "capture",
    "format_traceparent",
    "make_traceparent",
    "parse_traceparent",
    "phase_scope",
    "progress_scope",
    "span_tree",
    "load_chrome_trace",
    "snapshot_from_chrome_trace",
]


def enable() -> None:
    """Turn on span recording and metric collection (idempotent)."""
    TRACER.metrics = METRICS
    TRACER.enable()
    METRICS.enable()


def disable() -> None:
    TRACER.disable()
    METRICS.disable()


def reset() -> None:
    """Drop all recorded spans and series (keeps the enabled state)."""
    TRACER.clear()
    METRICS.clear()


def capture() -> TelemetrySnapshot:
    """Snapshot everything recorded so far."""
    return TelemetrySnapshot.capture(TRACER, METRICS)


@contextmanager
def telemetry(clear: bool = True):
    """Enable telemetry for a block; yields the live tracer.

    On exit the singletons are disabled again (never cleared, so the
    caller can still :func:`capture` afterwards — or capture inside
    the block).
    """
    if clear:
        reset()
    enable()
    try:
        yield TRACER
    finally:
        disable()
