"""Exporters: JSONL event log, Chrome trace-event JSON, Prometheus text.

All three render a :class:`TelemetrySnapshot` — an immutable capture of
span records plus a metrics snapshot, taken at the end of an
``analyze()`` call (after worker deltas have been merged in).

Chrome trace format reference: the "JSON Array Format" with complete
(``ph: "X"``) events; ``ts``/``dur`` are microseconds.  The emitted
file loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` as a flamegraph, one track per pid.

Every ``write_*`` exporter is crash-safe (temp file + ``os.replace``,
so a killed export leaves the previous file intact, never a truncated
one) and degrades an ``OSError`` — real or injected via the
``io_error`` chaos hook — to a counted metric and a ``False`` return
instead of raising: telemetry must never take down the analysis it
observed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .metrics import MetricsRegistry, _num


def _atomic_write(path: str, render: Callable[[Any], None],
                  where: str) -> bool:
    """Write via temp file + ``os.replace``; OSError → metric + False.

    ``render`` receives the open temp file handle.  Honors the seeded
    ``io_error`` chaos hook installed on :class:`TelemetrySnapshot`.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    monkey = TelemetrySnapshot._chaos
    try:
        if monkey is not None:
            monkey.maybe_io_error(where)
        with open(tmp, "w", encoding="utf-8") as fh:
            render(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return True
    except OSError:
        from . import METRICS

        if METRICS.enabled:
            METRICS.counter_inc(
                "repro_obs_export_errors_total", where=where)
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Everything one analysis run observed, ready for export."""

    spans: tuple = ()          # tuple[SpanRecord-as-dict, ...]
    metrics: dict = field(default_factory=dict)  # MetricsRegistry.snapshot()
    pid: int = 0               # capturing process (labels its track)

    #: Chaos hook (class attribute — the dataclass is frozen):
    #: repro.runtime.chaos.inject_faults installs a monkey here so
    #: tests can make exporter writes fail on demand.
    _chaos = None

    # ----- constructors -----------------------------------------------------

    @classmethod
    def capture(cls, tracer, registry) -> "TelemetrySnapshot":
        return cls(
            spans=tuple(tracer.export_records()),
            metrics=registry.snapshot(),
            pid=os.getpid(),
        )

    # ----- summaries --------------------------------------------------------

    def phase_names(self) -> set[str]:
        return {s["name"] for s in self.spans}

    def counter_total(self, name: str) -> float:
        return sum(c["value"] for c in self.metrics.get("counters", ())
                   if c["name"] == name)

    # ----- exporters --------------------------------------------------------

    def chrome_trace_events(self) -> list[dict[str, Any]]:
        """Complete-event list, sorted by ``ts``, preceded by
        ``process_name``/``thread_name`` metadata (``ph: "M"``) so
        Perfetto labels the tracks — "repro main" for the capturing
        process, "portfolio worker" for every other pid — instead of
        showing bare process ids."""
        events = []
        for s in self.spans:
            events.append({
                "name": s["name"],
                "cat": "repro",
                "ph": "X",
                "ts": round(s["ts"] * 1e6, 3),
                "dur": round(s["wall"] * 1e6, 3),
                "pid": s["pid"],
                "tid": s["pid"],
                "args": {
                    **s["attrs"],
                    "cpu_us": round(s["cpu"] * 1e6, 3),
                    "span_id": s["span_id"],
                    "parent_id": s["parent_id"],
                    "trace_id": s.get("trace_id", ""),
                },
            })
        events.sort(key=lambda e: (e["ts"], -e["dur"]))
        meta = []
        for pid in sorted({s["pid"] for s in self.spans}):
            role = ("repro main" if self.pid and pid == self.pid
                    else "portfolio worker")
            label = f"{role} (pid {pid})"
            for kind in ("process_name", "thread_name"):
                meta.append({
                    "name": kind,
                    "cat": "__metadata",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": pid,
                    "args": {"name": label},
                })
        return meta + events

    def write_chrome_trace(self, path: str) -> bool:
        doc = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs"},
        }

        def render(fh):
            json.dump(doc, fh, indent=None, separators=(",", ":"))
            fh.write("\n")

        return _atomic_write(path, render, "trace")

    def write_jsonl(self, path: str) -> bool:
        """One JSON object per line: spans first (by ts), then metrics."""

        def render(fh):
            for s in sorted(self.spans, key=lambda s: s["ts"]):
                fh.write(json.dumps({"event": "span", **s}) + "\n")
            for kind in ("counters", "gauges", "histograms"):
                for item in self.metrics.get(kind, ()):
                    fh.write(json.dumps({"event": kind[:-1], **item}) + "\n")

        return _atomic_write(path, render, "jsonl")

    def to_prometheus(self) -> str:
        registry = MetricsRegistry()
        registry.enable()
        registry.merge(self.metrics)
        _add_derived_series(registry)
        return registry.to_prometheus()

    def write_prometheus(self, path: str) -> bool:
        text = self.to_prometheus()
        return _atomic_write(path, lambda fh: fh.write(text), "prometheus")

    # ----- human summary (CLI `repro stats`) --------------------------------

    def describe(self) -> str:
        lines = []
        by_phase: dict[str, list[float]] = {}
        for s in self.spans:
            by_phase.setdefault(s["name"], []).append(s["wall"])
        if by_phase:
            lines.append("spans:")
            for name in sorted(by_phase,
                               key=lambda n: -sum(by_phase[n])):
                walls = by_phase[name]
                lines.append(
                    f"  {name:<20} n={len(walls):<5} "
                    f"total={sum(walls)*1e3:9.2f}ms "
                    f"max={max(walls)*1e3:8.2f}ms"
                )
        counters = self.metrics.get("counters", ())
        if counters:
            lines.append("counters:")
            for c in counters:
                label = "".join(
                    f" {k}={v}" for k, v in sorted(c["labels"].items()))
                lines.append(f"  {c['name']}{label} = {_num(c['value'])}")
        gauges = self.metrics.get("gauges", ())
        if gauges:
            lines.append("gauges:")
            for g in gauges:
                label = "".join(
                    f" {k}={v}" for k, v in sorted(g["labels"].items()))
                lines.append(f"  {g['name']}{label} = {_num(g['value'])}")
        return "\n".join(lines) if lines else "(no telemetry recorded)"


def _add_derived_series(registry: MetricsRegistry) -> None:
    """Gauges computed at export time rather than on the hot path."""
    hits = registry.counter_total("repro_cache_hits_total")
    misses = registry.counter_total("repro_cache_misses_total")
    total = hits + misses
    registry.gauge_set("repro_cache_hit_ratio", hits / total if total else 0.0)


def load_chrome_trace(path: str) -> list[dict[str, Any]]:
    """Read back a trace file's event list (used by `repro stats`)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, list):  # bare JSON-array variant of the format
        return doc
    return doc.get("traceEvents", [])


def snapshot_from_chrome_trace(path: str) -> TelemetrySnapshot:
    """Rebuild a (span-only) snapshot from an emitted trace file."""
    spans = []
    for e in load_chrome_trace(path):
        if e.get("ph") != "X":  # skips "M" metadata events too
            continue
        args = e.get("args", {})
        spans.append({
            "name": e.get("name", "?"),
            "ts": e.get("ts", 0) / 1e6,
            "wall": e.get("dur", 0) / 1e6,
            "cpu": args.get("cpu_us", 0) / 1e6,
            "span_id": args.get("span_id", 0),
            "parent_id": args.get("parent_id", 0),
            "pid": e.get("pid", 0),
            "trace_id": args.get("trace_id", ""),
            "attrs": {k: v for k, v in args.items()
                      if k not in ("cpu_us", "span_id", "parent_id",
                                   "trace_id")},
        })
    return TelemetrySnapshot(spans=tuple(spans))
