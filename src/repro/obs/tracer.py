"""Hierarchical spans over the compile–solve pipeline.

A :class:`Span` measures one pipeline phase — wall-clock *and* CPU
time — and nests: spans opened while another span is active become its
children, so an exported trace reconstructs the full call tree
(parse → typecheck → symexec → interval inference → bit-blast →
Tseitin → CDCL, plus per-VC / per-Houdini-round / per-BMC-bound /
per-portfolio-rung detail).

Design constraints, in priority order:

1. **Near-free when disabled.**  Instrumented call sites run
   ``TRACER.span(...)`` unconditionally; with tracing off this returns
   one shared no-op context manager without allocating a record.  The
   guard tests in ``tests/test_obs.py`` keep this honest against the
   smallest SAT-ablation workload (<2% of its wall time).  Hot inner
   loops (unit propagation, gate construction) are *never* spanned —
   they only feed aggregate counters.
2. **Cross-process mergeable.**  Wall timestamps use ``time.time()``
   (the shared system epoch), so spans recorded inside portfolio
   worker processes interleave correctly with the parent's when merged
   via :meth:`Tracer.merge`; every record carries its producing
   ``pid``.
3. **Zero dependencies.**  Plain dataclasses and ``time``; exporters
   live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class SpanRecord:
    """One finished span, ready for export.

    ``ts`` is seconds since the Unix epoch (comparable across
    processes on one machine); ``wall`` and ``cpu`` are durations in
    seconds.  ``parent_id`` is 0 for root spans.
    """

    name: str
    ts: float
    wall: float
    cpu: float
    span_id: int
    parent_id: int
    pid: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "ts": self.ts,
            "wall": self.wall,
            "cpu": self.cpu,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            ts=float(data["ts"]),
            wall=float(data["wall"]),
            cpu=float(data["cpu"]),
            span_id=int(data["span_id"]),
            parent_id=int(data["parent_id"]),
            pid=int(data["pid"]),
            attrs=dict(data.get("attrs") or {}),
        )


class Span:
    """A live span; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "_ts", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, parent_id: int,
                 attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(tracer._ids)
        self.parent_id = parent_id

    def set(self, key: str, value: Any) -> None:
        """Attach (or update) an attribute on the live span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self.span_id)
        self._ts = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        tracer = self._tracer
        stack = tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        else:  # pragma: no cover - defensive against unbalanced exits
            try:
                stack.remove(self.span_id)
            except ValueError:
                pass
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer._finish(self, wall, cpu)


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`SpanRecord`\\ s while :attr:`enabled` is True.

    One process-wide instance (:data:`TRACER`) is mutated in place —
    call sites hold a direct reference, so enabling/disabling never
    invalidates imports.  The optional ``metrics`` hook feeds every
    finished span's wall time into a ``repro_span_seconds`` histogram
    so phase timings surface in Prometheus output too.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.records: list[SpanRecord] = []
        self.metrics = None  # Optional[MetricsRegistry], set by configure()
        self._stack: list[int] = []
        self._ids = itertools.count(1)

    # ----- recording --------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span; returns a context manager (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        parent = self._stack[-1] if self._stack else 0
        return Span(self, name, parent, attrs)

    def _finish(self, span: Span, wall: float, cpu: float) -> None:
        self.records.append(SpanRecord(
            name=span.name,
            ts=span._ts,
            wall=wall,
            cpu=cpu,
            span_id=span.span_id,
            parent_id=span.parent_id,
            pid=os.getpid(),
            attrs=span.attrs,
        ))
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.observe("repro_span_seconds", wall, span=span.name)

    # ----- lifecycle --------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.records.clear()
        self._stack.clear()

    # ----- aggregation ------------------------------------------------------

    def export_records(self) -> list[dict[str, Any]]:
        """Plain-dict form of every record (picklable / JSON-able)."""
        return [r.to_dict() for r in self.records]

    def merge(self, records) -> None:
        """Absorb records shipped from another process (or snapshot).

        Child-process span ids live in a different id space, so merged
        records keep their own parent links but are never re-parented
        under this process's spans; the exporters separate them by
        ``pid`` instead.
        """
        for item in records:
            if isinstance(item, SpanRecord):
                self.records.append(item)
            else:
                self.records.append(SpanRecord.from_dict(item))


#: The process-wide tracer. Mutated in place, never replaced.
TRACER = Tracer()
