"""Hierarchical spans over the compile–solve pipeline.

A :class:`Span` measures one pipeline phase — wall-clock *and* CPU
time — and nests: spans opened while another span is active become its
children, so an exported trace reconstructs the full call tree
(parse → typecheck → symexec → interval inference → bit-blast →
Tseitin → CDCL, plus per-VC / per-Houdini-round / per-BMC-bound /
per-portfolio-rung detail).

Design constraints, in priority order:

1. **Near-free when disabled.**  Instrumented call sites run
   ``TRACER.span(...)`` unconditionally; with tracing off this returns
   one shared no-op context manager without allocating a record.  The
   guard tests in ``tests/test_obs.py`` keep this honest against the
   smallest SAT-ablation workload (<2% of its wall time).  Hot inner
   loops (unit propagation, gate construction) are *never* spanned —
   they only feed aggregate counters.
2. **Cross-process stitchable.**  Wall timestamps use ``time.time()``
   (the shared system epoch) and span ids are drawn from a shared
   random 63-bit space, so spans recorded inside portfolio worker
   processes interleave correctly with the parent's when merged via
   :meth:`Tracer.merge` *and* keep valid parent links — a worker that
   adopted the dispatcher's traceparent re-parents under the
   dispatching span.  Every record carries its producing ``pid`` and
   the ``trace_id`` it belongs to.
3. **Concurrency-safe.**  The active-span stack and the ambient trace
   context live in :mod:`contextvars`, so concurrent asyncio requests
   (each task runs in its own context copy) never mis-parent each
   other's spans.  To carry the context into a thread pool, snapshot
   with ``contextvars.copy_context()`` and run the job via
   ``ctx.run(...)``.
4. **Zero dependencies.**  Plain dataclasses and ``time``; exporters
   live in :mod:`repro.obs.export`.

Wire format: the cross-process context is a W3C-style traceparent
string ``00-<32 hex trace_id>-<16 hex span_id>-01``.  It travels in
the ``traceparent`` HTTP header (client → serve), in batch-journal
``submit`` records (serve → ``batch resume`` after a crash), and in
portfolio task tuples (dispatcher → worker).
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Optional

#: Private RNG for span/trace ids — never touches the global
#: ``random`` state (tests that seed it stay deterministic).
_rng = random.Random()


def _new_span_id() -> int:
    """A random 63-bit non-zero span id, unique across processes."""
    while True:
        sid = _rng.getrandbits(63)
        if sid:
            return sid


def _new_trace_id() -> str:
    return f"{_rng.getrandbits(128):032x}"


def format_traceparent(trace_id: str, span_id: int) -> str:
    """Render a W3C-style traceparent: ``00-<trace>-<span>-01``."""
    return f"00-{trace_id}-{span_id:016x}-01"


def parse_traceparent(header: Optional[str]) -> Optional[tuple[str, int]]:
    """Parse a traceparent into ``(trace_id, span_id)``.

    Returns ``None`` for anything malformed — a bad header must never
    break request handling, it just starts a fresh trace.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_hex, _flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_hex) != 16:
        return None
    try:
        int(trace_id, 16)
        span_id = int(span_hex, 16)
    except ValueError:
        return None
    if int(trace_id, 16) == 0 or span_id == 0:
        return None
    return trace_id.lower(), span_id


def make_traceparent() -> str:
    """A fresh traceparent for callers with no ambient trace context
    (e.g. a non-instrumented ``ServiceClient``): new trace, synthetic
    root span id."""
    return format_traceparent(_new_trace_id(), _new_span_id())


@dataclass
class SpanRecord:
    """One finished span, ready for export.

    ``ts`` is seconds since the Unix epoch (comparable across
    processes on one machine); ``wall`` and ``cpu`` are durations in
    seconds.  ``parent_id`` is 0 for root spans; ``trace_id`` groups
    every span of one logical job across processes.
    """

    name: str
    ts: float
    wall: float
    cpu: float
    span_id: int
    parent_id: int
    pid: int
    attrs: dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "ts": self.ts,
            "wall": self.wall,
            "cpu": self.cpu,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "attrs": self.attrs,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            ts=float(data["ts"]),
            wall=float(data["wall"]),
            cpu=float(data["cpu"]),
            span_id=int(data["span_id"]),
            parent_id=int(data["parent_id"]),
            pid=int(data["pid"]),
            attrs=dict(data.get("attrs") or {}),
            trace_id=str(data.get("trace_id") or ""),
        )


class Span:
    """A live span; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "trace_id", "_ts", "_wall0", "_cpu0", "_stack_token",
                 "_trace_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = _new_span_id()
        self.parent_id = 0
        self.trace_id = ""

    def set(self, key: str, value: Any) -> None:
        """Attach (or update) an attribute on the live span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        tracer = self._tracer
        trace = tracer._trace.get()
        self._trace_token = None
        if trace is None:
            # Root span of a fresh trace: mint the trace id here so
            # every descendant (and every process it dispatches to)
            # shares it.
            trace = (_new_trace_id(), 0)
            self._trace_token = tracer._trace.set(trace)
        self.trace_id = trace[0]
        stack = tracer._stack.get()
        self.parent_id = stack[-1] if stack else trace[1]
        self._stack_token = tracer._stack.set(stack + (self.span_id,))
        self._ts = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        tracer = self._tracer
        try:
            tracer._stack.reset(self._stack_token)
            if self._trace_token is not None:
                tracer._trace.reset(self._trace_token)
        except ValueError:  # pragma: no cover - exited in another context
            pass
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer._finish(self, wall, cpu)


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: Active span stack (span ids, innermost last) for the current
#: logical context.  Module-level so every context sees the same
#: variable object while values stay context-local.
_SPAN_STACK: ContextVar[tuple[int, ...]] = ContextVar(
    "repro_span_stack", default=())
#: Ambient trace context: ``(trace_id, remote_parent_span_id)`` or
#: ``None`` when no trace is active.
_TRACE_CTX: ContextVar[Optional[tuple[str, int]]] = ContextVar(
    "repro_trace_ctx", default=None)


class Tracer:
    """Collects :class:`SpanRecord`\\ s while :attr:`enabled` is True.

    One process-wide instance (:data:`TRACER`) is mutated in place —
    call sites hold a direct reference, so enabling/disabling never
    invalidates imports.  The optional ``metrics`` hook feeds every
    finished span's wall time into a ``repro_span_seconds`` histogram
    so phase timings surface in Prometheus output too.

    ``max_records`` (None = unbounded) bounds memory in long-lived
    processes such as ``repro serve``: when the buffer overflows, the
    oldest records are dropped — live trace views may lose the head of
    very old traces, which is the right trade for a server.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.records: list[SpanRecord] = []
        self.metrics = None  # Optional[MetricsRegistry], set by configure()
        self.max_records: Optional[int] = None
        self._stack = _SPAN_STACK
        self._trace = _TRACE_CTX

    # ----- recording --------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span; returns a context manager (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def _finish(self, span: Span, wall: float, cpu: float) -> None:
        self.records.append(SpanRecord(
            name=span.name,
            ts=span._ts,
            wall=wall,
            cpu=cpu,
            span_id=span.span_id,
            parent_id=span.parent_id,
            pid=os.getpid(),
            attrs=span.attrs,
            trace_id=span.trace_id,
        ))
        cap = self.max_records
        if cap is not None and len(self.records) > cap:
            del self.records[:len(self.records) - cap]
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.observe("repro_span_seconds", wall, span=span.name)

    # ----- trace context ----------------------------------------------------

    def stack_depth(self) -> int:
        """How many spans are open in the current context."""
        return len(self._stack.get())

    def current_trace_id(self) -> Optional[str]:
        trace = self._trace.get()
        return trace[0] if trace else None

    def traceparent(self) -> Optional[str]:
        """The current context as a traceparent string, or ``None``.

        Encodes the innermost open span (so remote work started now
        parents under it), falling back to the adopted remote parent
        when no local span is open.
        """
        trace = self._trace.get()
        if trace is None:
            return None
        stack = self._stack.get()
        span_id = stack[-1] if stack else trace[1]
        if not span_id:
            return None
        return format_traceparent(trace[0], span_id)

    @contextmanager
    def activate(self, traceparent: Optional[str]):
        """Adopt a foreign traceparent for the duration of a block.

        Spans opened inside join the foreign trace; the outermost one
        parents under the foreign span id.  A ``None`` or malformed
        traceparent makes this a no-op passthrough (a fresh trace
        starts at the next root span).
        """
        parsed = parse_traceparent(traceparent)
        if parsed is None:
            yield
            return
        trace_token = self._trace.set(parsed)
        stack_token = self._stack.set(())
        try:
            yield
        finally:
            try:
                self._stack.reset(stack_token)
                self._trace.reset(trace_token)
            except ValueError:  # pragma: no cover - crossed contexts
                pass

    def adopt(self, traceparent: Optional[str]) -> None:
        """Set (or clear) the trace context without restore semantics.

        For process entry points that own their context outright — a
        portfolio worker adopting the dispatcher's context for one
        task.  ``None`` clears any previous adoption.
        """
        self._trace.set(parse_traceparent(traceparent))
        self._stack.set(())

    # ----- lifecycle --------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.records.clear()
        self._stack.set(())
        self._trace.set(None)

    # ----- aggregation ------------------------------------------------------

    def export_records(self) -> list[dict[str, Any]]:
        """Plain-dict form of every record (picklable / JSON-able)."""
        return [r.to_dict() for r in self.records]

    def merge(self, records) -> None:
        """Absorb records shipped from another process (or snapshot).

        Span ids are globally unique (random 63-bit), so merged
        records keep valid parent links: a worker that adopted the
        dispatcher's traceparent re-parents under the dispatching span
        and the exporters render one stitched tree across pids.
        """
        for item in records:
            if isinstance(item, SpanRecord):
                self.records.append(item)
            else:
                self.records.append(SpanRecord.from_dict(item))
        cap = self.max_records
        if cap is not None and len(self.records) > cap:
            del self.records[:len(self.records) - cap]


def span_tree(records) -> list[dict[str, Any]]:
    """Build a nested span tree from record dicts (or SpanRecords).

    Returns the list of roots, each ``{name, ts, wall, cpu, pid,
    span_id, parent_id, trace_id, attrs, children}``, children sorted
    by start time.  Spans whose parent is missing (e.g. the parent
    process was SIGKILLed before its span closed) surface as roots —
    the hole is real crash evidence, not an error.
    """
    nodes: dict[int, dict[str, Any]] = {}
    ordered: list[dict[str, Any]] = []
    for item in records:
        data = item.to_dict() if isinstance(item, SpanRecord) else dict(item)
        node = {
            "name": data["name"],
            "ts": data["ts"],
            "wall": data["wall"],
            "cpu": data["cpu"],
            "pid": data["pid"],
            "span_id": data["span_id"],
            "parent_id": data["parent_id"],
            "trace_id": data.get("trace_id", ""),
            "attrs": data.get("attrs") or {},
            "children": [],
        }
        nodes[node["span_id"]] = node
        ordered.append(node)
    roots: list[dict[str, Any]] = []
    for node in ordered:
        parent = nodes.get(node["parent_id"])
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in ordered:
        node["children"].sort(key=lambda n: n["ts"])
    roots.sort(key=lambda n: n["ts"])
    return roots


#: The process-wide tracer. Mutated in place, never replaced.
TRACER = Tracer()
