"""Live solver-progress beacons.

Long CDCL solves (tens of seconds at T=6) are black boxes between
their first decision and the verdict.  The beacon opens a low-overhead
side channel: every ``interval`` conflicts the solver emits one
:class:`SolveProgress` sample — conflicts, decisions, propagation
rate, restarts, learnt-DB size, plus whatever phase context (VC name,
BMC bound, portfolio rung/slot) the surrounding pipeline annotated —
and the sample flows to wherever the process's sink routes it:

* in ``repro serve``: a per-job ring buffer (:class:`ProgressBook`)
  behind ``GET /v1/jobs/<id>/progress``, mirrored to
  ``<spool>/progress/<job>.json`` so ``repro top <spool>`` works even
  against a crashed service;
* in ``repro batch run/resume``: the same book under the batch
  directory;
* inside a portfolio worker: forwarded over the existing result queue
  as ``("progress", task_id, sample)`` messages and re-emitted by the
  dispatching process's beacon.

Overhead discipline mirrors the tracer: with the beacon disabled a
solve pays one attribute load per ``_search`` call (not per conflict);
enabled, one integer compare per conflict plus a dict build every
``interval`` conflicts (default 2000 ≈ a few Hz on hard instances).
The <2% disabled-overhead guard in ``tests/test_obs.py`` covers the
beacon's call sites too.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from .metrics import METRICS, register_help

register_help("repro_obs_progress_samples_total",
              "Live solver-progress samples recorded.")

#: Default emission cadence, in conflicts.
DEFAULT_INTERVAL = int(os.environ.get("REPRO_PROGRESS_INTERVAL", "2000"))

#: Job identity for the current logical context (serve request /
#: batch job); stamped onto every sample emitted beneath it.
_JOB: ContextVar[Optional[str]] = ContextVar("repro_progress_job",
                                             default=None)
#: Pipeline phase context (vc / bound / rung / slot ...), merged
#: outermost-first.
_PHASE: ContextVar[tuple[tuple[str, Any], ...]] = ContextVar(
    "repro_progress_phase", default=())


@dataclass
class SolveProgress:
    """One beacon sample.  ``phase`` carries pipeline context such as
    the VC name, BMC bound, or portfolio rung/slot."""

    ts: float
    job: str
    conflicts: int
    decisions: int
    propagations: int
    restarts: int
    learnt: int
    trail: int
    num_vars: int
    conflicts_per_s: float
    props_per_s: float
    phase: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ts": self.ts,
            "job": self.job,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learnt": self.learnt,
            "trail": self.trail,
            "num_vars": self.num_vars,
            "conflicts_per_s": self.conflicts_per_s,
            "props_per_s": self.props_per_s,
            "phase": self.phase,
        }


@contextmanager
def progress_scope(job: Optional[str]):
    """Stamp ``job`` onto every sample emitted inside the block."""
    token = _JOB.set(job)
    try:
        yield
    finally:
        try:
            _JOB.reset(token)
        except ValueError:  # pragma: no cover - crossed contexts
            pass


@contextmanager
def phase_scope(**attrs: Any):
    """Merge phase context (vc=..., bound=..., rung=...) for a block."""
    token = _PHASE.set(_PHASE.get() + tuple(attrs.items()))
    try:
        yield
    finally:
        try:
            _PHASE.reset(token)
        except ValueError:  # pragma: no cover - crossed contexts
            pass


class ProgressBeacon:
    """Process-wide beacon switch + sink.

    Disabled by default; ``repro serve`` and ``repro batch run``
    enable it with a :class:`ProgressBook` sink.  Inside a portfolio
    worker, :meth:`configure_remote` re-points the sink at the result
    queue for the duration of one task.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.interval = DEFAULT_INTERVAL
        self.sink: Optional[Callable[[dict[str, Any]], None]] = None

    # ----- lifecycle --------------------------------------------------------

    def enable(self, sink: Callable[[dict[str, Any]], None],
               interval: Optional[int] = None) -> None:
        self.sink = sink
        if interval is not None:
            self.interval = max(1, int(interval))
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self.sink = None

    @contextmanager
    def routed(self, sink: Callable[[dict[str, Any]], None],
               interval: Optional[int] = None):
        """Enable (or re-route) the beacon for a block, then restore."""
        prev = (self.enabled, self.interval, self.sink)
        self.enable(sink, interval)
        try:
            yield
        finally:
            self.enabled, self.interval, self.sink = prev

    # ----- emission ---------------------------------------------------------

    def current_job(self) -> Optional[str]:
        return _JOB.get()

    def current_phase(self) -> dict[str, Any]:
        return dict(_PHASE.get())

    def emit(self, sample: dict[str, Any]) -> None:
        """Stamp ambient context onto ``sample`` and deliver it.

        Sink failures are swallowed: progress is best-effort telemetry
        and must never abort a solve.
        """
        sink = self.sink
        if sink is None:
            return
        sample.setdefault("ts", time.time())
        sample.setdefault("job", _JOB.get() or "-")
        merged = self.current_phase()
        merged.update(sample.get("phase") or {})
        sample["phase"] = merged
        try:
            sink(sample)
        except Exception:  # pragma: no cover - sink bugs must not kill solves
            pass

    def forward(self, sample: dict[str, Any]) -> None:
        """Deliver a fully-stamped sample from another process as-is."""
        sink = self.sink
        if sink is None:
            return
        try:
            sink(sample)
        except Exception:  # pragma: no cover
            pass

    # ----- cross-process shipping -------------------------------------------

    def ship(self) -> Optional[dict[str, Any]]:
        """Snapshot to send with a portfolio task, or ``None`` when
        disabled (workers then keep their beacons off)."""
        if not self.enabled:
            return None
        return {
            "interval": self.interval,
            "job": _JOB.get(),
            "phase": self.current_phase(),
        }

    def configure_remote(self, shipped: Optional[dict[str, Any]],
                         sink: Callable[[dict[str, Any]], None]) -> None:
        """Adopt a shipped snapshot inside a worker (per task)."""
        if shipped is None:
            self.disable()
            return
        _JOB.set(shipped.get("job"))
        _PHASE.set(tuple((shipped.get("phase") or {}).items()))
        self.enable(sink, shipped.get("interval"))


#: The process-wide beacon. Mutated in place, never replaced.
BEACON = ProgressBeacon()


def _safe_job_filename(job: str) -> Optional[str]:
    if not job or job == "-":
        return None
    if all(c.isalnum() or c in "._-" for c in job):
        return job + ".json"
    return None


class ProgressBook:
    """Per-job ring buffers of progress samples, optionally mirrored
    to ``<directory>/<job>.json`` so detached tools (``repro top`` on
    a spool dir) can watch without talking to the service."""

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 maxlen: int = 120, write_interval: float = 0.2):
        self.directory = Path(directory) if directory is not None else None
        self.maxlen = maxlen
        self.write_interval = write_interval
        self._rings: dict[str, deque] = {}
        self._last_write: dict[str, float] = {}
        self._lock = threading.Lock()

    def record(self, sample: dict[str, Any]) -> None:
        job = str(sample.get("job") or "-")
        with self._lock:
            ring = self._rings.get(job)
            if ring is None:
                ring = self._rings[job] = deque(maxlen=self.maxlen)
            ring.append(sample)
        METRICS.counter_inc("repro_obs_progress_samples_total")
        self._mirror(job, sample)

    def _mirror(self, job: str, sample: dict[str, Any]) -> None:
        if self.directory is None:
            return
        fname = _safe_job_filename(job)
        if fname is None:
            return
        now = time.monotonic()
        with self._lock:
            last = self._last_write.get(job, 0.0)
            if now - last < self.write_interval:
                return
            self._last_write[job] = now
            recent = list(self._rings.get(job, ()))[-8:]
        doc = {"job": job, "updated": time.time(),
               "latest": sample, "samples": recent}
        path = self.directory / fname
        tmp = path.with_suffix(".json.tmp")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(doc), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:  # best-effort mirror; never fail a solve
            METRICS.counter_inc("repro_persist_io_errors_total",
                                site="progress")

    # ----- reads ------------------------------------------------------------

    def jobs(self) -> list[str]:
        with self._lock:
            return sorted(self._rings)

    def latest(self, job: str) -> Optional[dict[str, Any]]:
        with self._lock:
            ring = self._rings.get(job)
            return ring[-1] if ring else None

    def samples(self, job: str) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._rings.get(job, ()))

    @staticmethod
    def read_dir(directory: os.PathLike) -> dict[str, dict[str, Any]]:
        """Load the latest mirrored sample per job from a progress
        directory (tolerates missing/partial files)."""
        out: dict[str, dict[str, Any]] = {}
        root = Path(directory)
        if not root.is_dir():
            return out
        for path in sorted(root.glob("*.json")):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            job = str(doc.get("job") or path.stem)
            out[job] = doc
        return out
