"""Tests for the DRR scheduler and token-bucket shaper models."""

import pytest

from repro.backends.smt_backend import SmtBackend, Status
from repro.buffers.packets import Packet
from repro.compiler.symexec import EncodeConfig
from repro.lang.interp import Interpreter
from repro.netmodels.shaping import drr, token_bucket_shaper
from repro.smt.terms import mk_int, mk_le

CONFIG = EncodeConfig(buffer_capacity=6, arrivals_per_step=2)


class TestDRRConcrete:
    def test_quantum_batching(self):
        """With quantum 2, two backlogged queues alternate in pairs."""
        interp = Interpreter(drr(2, quantum=2))
        workload = [{"ibs[0]": [Packet(flow=0)] * 4,
                     "ibs[1]": [Packet(flow=1)] * 4}] + [{}] * 7
        interp.run(workload)
        flows = [p.flow for p in interp.buffer("ob").packets()]
        assert flows == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_quantum_one_is_round_robin(self):
        interp = Interpreter(drr(2, quantum=1))
        workload = [{"ibs[0]": [Packet(flow=0)] * 3,
                     "ibs[1]": [Packet(flow=1)] * 3}] + [{}] * 5
        interp.run(workload)
        flows = [p.flow for p in interp.buffer("ob").packets()]
        assert flows == [0, 1, 0, 1, 0, 1]

    def test_work_conserving_when_one_queue_empty(self):
        interp = Interpreter(drr(2, quantum=2))
        interp.run([{"ibs[1]": [Packet(flow=1)] * 3}] + [{}] * 3)
        flows = [p.flow for p in interp.buffer("ob").packets()]
        assert flows == [1, 1, 1]

    def test_fairness_symbolic(self):
        """Both queues continuously backlogged: service within one
        quantum of each other — checked over all admissible traces."""
        horizon = 6
        backend = SmtBackend(drr(2, quantum=2), steps=horizon,
                             config=CONFIG)
        backlogged = [
            mk_le(mk_int(1), backend.backlog(f"ibs[{q}]", t))
            for q in range(2) for t in range(horizon)
        ]
        gap = backend.deq_count("ibs[0]") - backend.deq_count("ibs[1]")
        unfair = mk_le(mk_int(3), gap)  # gap of >= 3 > quantum
        result = backend.find_trace(unfair, extra_assumptions=backlogged)
        assert result.status is Status.UNSATISFIABLE
        # A gap of 2 (exactly one quantum) IS reachable.
        reachable = mk_le(mk_int(2), gap)
        result = backend.find_trace(reachable, extra_assumptions=backlogged)
        assert result.status is Status.SATISFIED


class TestShaperConcrete:
    def test_initial_burst_then_rate(self):
        interp = Interpreter(token_bucket_shaper(rate=1, bucket=3))
        # A big backlog arrives at once; the first step may release the
        # full bucket (+1 refill), afterwards exactly the rate.
        records = [interp.run_step({"ib": [Packet()] * 10})]
        records += [interp.run_step({}) for _ in range(4)]
        sent = [r.monitors["m_sent"] for r in records]
        per_step = [sent[0]] + [b - a for a, b in zip(sent, sent[1:])]
        assert per_step[0] == 3  # bucket capped at 3
        assert all(x == 1 for x in per_step[1:])

    def test_long_run_rate_envelope(self):
        interp = Interpreter(token_bucket_shaper(rate=1, bucket=3))
        horizon = 12
        for _ in range(horizon):
            interp.run_step({"ib": [Packet(), Packet()]})
        sent = interp.globals["m_sent"]
        assert sent <= 1 * horizon + 3  # RATE*t + BUCKET
        assert sent >= 1 * horizon      # work conserving when backlogged

    def test_idle_accumulates_only_bucket(self):
        interp = Interpreter(token_bucket_shaper(rate=1, bucket=3))
        for _ in range(5):
            interp.run_step({})  # idle: tokens cap at the bucket
        interp.run_step({"ib": [Packet()] * 8})
        assert interp.globals["m_sent"] == 3


class TestShaperSymbolic:
    def test_rate_envelope_proved(self):
        """∀ traces: departures <= RATE*T + BUCKET — proved by the SMT
        back end, the shaper's defining property."""
        horizon = 5
        backend = SmtBackend(
            token_bucket_shaper(rate=1, bucket=3), steps=horizon,
            config=EncodeConfig(buffer_capacity=8, arrivals_per_step=3),
        )
        envelope = mk_le(
            backend.deq_count("ib"), mk_int(1 * horizon + 3)
        )
        assert backend.prove(envelope).status is Status.PROVED
        # The exact maximum is RATE*T + (BUCKET - 1): the bucket is
        # already full when the first refill arrives, so one refill
        # token is always lost to the cap.
        exact = mk_le(backend.deq_count("ib"), mk_int(1 * horizon + 2))
        assert backend.prove(exact).status is Status.PROVED
        below = mk_le(backend.deq_count("ib"), mk_int(1 * horizon + 1))
        assert backend.prove(below).status is Status.VIOLATED
