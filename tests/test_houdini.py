"""Tests for Houdini-style invariant synthesis (§5 future work)."""

import pytest

from repro.backends.dafny import DafnyBackend
from repro.backends.houdini import (
    Candidate,
    HoudiniSynthesizer,
    default_grammar,
)
from repro.backends.mc import MCStatus, ModelChecker
from repro.compiler.symexec import EncodeConfig, SymbolicMachine
from repro.netmodels.schedulers import round_robin, strict_priority
from repro.smt.terms import mk_int, mk_le

CONFIG = EncodeConfig(buffer_capacity=3, arrivals_per_step=1)


class TestGrammar:
    def test_grammar_covers_buffers_and_globals(self):
        machine = SymbolicMachine(round_robin(2), CONFIG)
        names = {c.name for c in default_grammar(machine)}
        assert "conserve[ibs[0]]" in names
        assert "deq_le_enq[ob]" in names
        assert "nxt_ge_0" in names          # the RR pointer global
        assert any(n.startswith("nxt_le_") for n in names)

    def test_grammar_names_unique(self):
        machine = SymbolicMachine(strict_priority(2), CONFIG)
        grammar = default_grammar(machine)
        names = [c.name for c in grammar]
        assert len(names) == len(set(names))


class TestSynthesis:
    def test_finds_conservation_and_rejects_junk(self):
        houdini = HoudiniSynthesizer(strict_priority(2), config=CONFIG)
        result = houdini.synthesize()
        names = set(result.names())
        # Conservation laws and sign facts survive.
        for label in ("ibs[0]", "ibs[1]", "ob"):
            assert f"conserve[{label}]" in names
            assert f"deq_le_enq[{label}]" in names
        # The planted false family must be rejected for input buffers
        # (for the output buffer it is genuinely invariant: nothing ever
        # dequeues from `ob` inside the program).
        assert "never_dequeues[ibs[0]]" not in names
        assert "never_dequeues[ibs[1]]" not in names
        assert "never_dequeues[ob]" in names
        dropped_names = {name for name, _ in result.dropped}
        assert "never_dequeues[ibs[0]]" in dropped_names
        assert result.iterations >= 1

    def test_synthesized_invariant_is_inductive(self):
        houdini = HoudiniSynthesizer(strict_priority(2), config=CONFIG)
        result = houdini.synthesize()
        dafny = DafnyBackend(strict_priority(2), config=CONFIG)
        report = dafny.verify_modular(result.as_invariant())
        assert report.ok, [vc.name for vc in report.failed()]

    def test_synthesized_invariant_proves_property(self):
        """End-to-end §5 story: synthesize the spec, then use it to
        modularly verify a query no horizon in sight."""
        houdini = HoudiniSynthesizer(strict_priority(2), config=CONFIG)
        result = houdini.synthesize()
        dafny = DafnyBackend(strict_priority(2), config=CONFIG)

        def bounded_backlog(view):
            return mk_le(view.backlog_p("ibs[0]"),
                         mk_int(CONFIG.buffer_capacity))

        report = dafny.verify_modular(
            result.as_invariant(), queries=[("bounded", bounded_backlog)]
        )
        assert report.ok

    def test_rr_pointer_bound_synthesized(self):
        houdini = HoudiniSynthesizer(round_robin(2), config=CONFIG)
        result = houdini.synthesize()
        names = set(result.names())
        assert "nxt_ge_0" in names
        assert "nxt_le_1" in names  # pointer stays within [0, N-1]

    def test_user_supplied_candidates(self):
        machine = SymbolicMachine(strict_priority(2), CONFIG)
        grammar = default_grammar(machine)
        grammar.append(Candidate(
            "bogus", lambda v: v.enq_p("ob").eq(mk_int(0))
        ))
        houdini = HoudiniSynthesizer(strict_priority(2), config=CONFIG)
        result = houdini.synthesize(candidates=grammar)
        assert "bogus" not in result.names()

    def test_works_with_k_induction(self):
        """The synthesized invariant strengthens k-induction: a property
        that is not 1-inductive alone can be proved with it."""
        houdini = HoudiniSynthesizer(strict_priority(2), config=CONFIG)
        invariant = houdini.synthesize().as_invariant()
        mc = ModelChecker(strict_priority(2), config=CONFIG)
        result = mc.k_induction(invariant, k=1)
        assert result.status is MCStatus.PROVED


class TestBudgetExhaustion:
    """An exhausted budget raises typed BudgetExhausted, not RuntimeError,
    and the exception carries the partial (surviving) invariant set."""

    def test_typed_exception_with_partial_result(self):
        from repro.runtime import Budget, BudgetExhausted

        houdini = HoudiniSynthesizer(
            strict_priority(2), config=CONFIG,
            budget=Budget(max_conflicts=10),
        )
        with pytest.raises(BudgetExhausted) as excinfo:
            houdini.synthesize()
        exc = excinfo.value
        assert not isinstance(exc, AssertionError)
        assert exc.report is not None
        partial = exc.partial
        assert partial is not None
        assert not partial.complete
        assert partial.resource_report is exc.report
        # The partial set is the not-yet-refuted candidates: it still
        # contains every candidate a full run would keep.
        full = HoudiniSynthesizer(strict_priority(2), config=CONFIG)
        kept = set(full.synthesize().names())
        assert kept <= set(partial.names())

    def test_completed_run_is_marked_complete(self):
        houdini = HoudiniSynthesizer(strict_priority(2), config=CONFIG)
        result = houdini.synthesize()
        assert result.complete
        assert result.resource_report is None
