"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import (
    fq_buggy,
    fq_fixed,
    round_robin,
    strict_priority,
)


@pytest.fixture
def prio2():
    return strict_priority(2)


@pytest.fixture
def rr2():
    return round_robin(2)


@pytest.fixture
def fq2():
    return fq_buggy(2)


@pytest.fixture
def fq2_fixed():
    return fq_fixed(2)


@pytest.fixture
def small_config():
    """A compact encoding configuration used across backend tests."""
    return EncodeConfig(buffer_capacity=4, arrivals_per_step=2)
