"""Tests for the embedded builder API."""

import pytest

from repro.buffers.packets import Packet
from repro.lang.builder import EB, ProgramBuilder
from repro.lang.checker import CheckError
from repro.lang.interp import Interpreter
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program


def build_prio(n=2):
    b = ProgramBuilder("prio")
    ibs = b.in_buffers("ibs", n)
    ob = b.out_buffer("ob")
    done = b.local_bool("dequeued")
    b.assign(done, False)
    with b.for_("i", 0, n) as i:
        with b.if_((~done) & (b.backlog_p(ibs[i]) > 0)):
            b.move_p(ibs[i], ob, 1)
            b.assign(done, True)
    return b.build()


class TestBuilder:
    def test_builds_checked_program(self):
        checked = build_prio()
        assert checked.name == "prio"
        assert [p.name for p in checked.program.params] == ["ibs", "ob"]

    def test_builder_program_runs(self):
        interp = Interpreter(build_prio())
        interp.run([{"ibs[0]": [Packet(flow=0)], "ibs[1]": [Packet(flow=1)]},
                    {}, {}])
        flows = [p.flow for p in interp.buffer("ob").packets()]
        assert flows == [0, 1]

    def test_equivalent_to_parsed_program(self):
        """The built program behaves like its concrete-syntax twin."""
        from repro.netmodels.schedulers import strict_priority

        workload = [
            {"ibs[0]": [Packet(flow=0)] * 2, "ibs[1]": [Packet(flow=1)]},
            {}, {}, {},
        ]
        built = Interpreter(build_prio())
        parsed = Interpreter(strict_priority(2))
        built.run(workload)
        parsed.run(workload)
        assert (built.buffer("ob").snapshot()
                == parsed.buffer("ob").snapshot())

    def test_if_else(self):
        b = ProgramBuilder("p")
        ib = b.in_buffer("ib")
        ob = b.out_buffer("ob")
        m = b.monitor_int("m")
        with b.if_else(b.backlog_p(ib) > 0) as (then, els):
            with then:
                b.assign(m, 1)
            with els:
                b.assign(m, 2)
        b.move_p(ib, ob, 1)
        checked = b.build()
        interp = Interpreter(checked)
        assert interp.run_step({"ib": [Packet()]}).monitors["m"] == 1
        assert interp.run_step({}).monitors["m"] == 2

    def test_monitors_assume_assert_havoc(self):
        b = ProgramBuilder("p")
        ib = b.in_buffer("ib")
        ob = b.out_buffer("ob")
        m = b.monitor_int("m")
        x = b.local_int("x")
        b.havoc(x, 0, 4)
        b.assume(x >= 0)
        b.assign(m, x)
        b.assert_(m >= 0, label="nonneg")
        b.move_p(ib, ob, x)
        checked = b.build()
        trace = Interpreter(checked).run([{}, {}])
        assert trace.ok()

    def test_pretty_printed_builder_program_parses(self):
        checked = build_prio()
        text = pretty_program(checked.program)
        reparsed = parse_program(text)
        assert reparsed.name == "prio"

    def test_type_errors_still_caught(self):
        b = ProgramBuilder("bad")
        ib = b.in_buffer("ib")
        ob = b.out_buffer("ob")
        x = b.local_int("x")
        b.assign(x, True)  # int := bool
        b.move_p(ib, ob, 1)
        with pytest.raises(CheckError):
            b.build()

    def test_expression_bool_guard(self):
        b = ProgramBuilder("p")
        x = b.local_int("x")
        with pytest.raises(TypeError):
            if x > 0:  # misuse: Python truth-testing a symbolic expr
                pass

    def test_const_and_global_decls(self):
        b = ProgramBuilder("p")
        ib = b.in_buffer("ib")
        ob = b.out_buffer("ob")
        k = b.const_int("K", 3)
        g = b.global_int("g")
        lst = b.global_list("l", capacity=4)
        b.push_back(lst, 1)
        with b.for_("i", 0, k):
            b.assign(g, g + 1)
        b.move_p(ib, ob, g)
        checked = b.build()
        interp = Interpreter(checked)
        interp.run_step({})
        assert interp.globals["g"] == 3
