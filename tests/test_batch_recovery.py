"""End-to-end crash recovery: SIGKILL a real ``repro batch run``, resume.

The acceptance test for the durability layer: a batch sweep killed
mid-run (via the deterministic ``REPRO_BATCH_KILL_AFTER`` hook, which
SIGKILLs the worker process right after its Nth job completes) must be
finishable by ``repro batch resume`` — every job completed exactly
once, with verdicts identical to an uninterrupted control run, cross-
checked through the per-batch result-cache keys.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

OK_SRC = """
prog(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
  assert(backlog-p(ob) >= 0);
}
"""

BAD_SRC = """
prog(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
  // Violated whenever a packet actually moves.
  assert(backlog-p(ob) == 0);
}
"""


def _repro(args, *, extra_env=None, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("REPRO_BATCH_KILL_AFTER", None)
    env.update(extra_env or {})
    # start_new_session: the kill hook SIGKILLs its whole process group
    # (so portfolio workers die with the parent, under REPRO_JOBS=2
    # too); the run must therefore not share the test runner's group.
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=timeout,
        start_new_session=True,
    )


def _submit_sweep(batch_dir, ok_file, bad_file):
    """Three distinct jobs: two horizons of OK_SRC plus one violation."""
    for horizon, path in (("2", ok_file), ("3", ok_file), ("2", bad_file)):
        proc = _repro([
            "batch", "submit", batch_dir, path, "--horizon", horizon,
        ])
        assert proc.returncode == 0, proc.stderr


def _verdicts(batch_dir):
    proc = _repro(["batch", "status", batch_dir])
    assert proc.returncode == 0, proc.stderr
    return sorted(
        line.strip() for line in proc.stdout.splitlines()
        if ": proved" in line or ": violated" in line
    )


def _cache_keys(batch_dir):
    cache_dir = os.path.join(batch_dir, "cache")
    keys = set()
    for root, _dirs, files in os.walk(cache_dir):
        keys.update(f for f in files if f.endswith(".json"))
    return keys


class TestKillResume:
    @pytest.fixture()
    def sources(self, tmp_path):
        ok = tmp_path / "ok.buffy"
        bad = tmp_path / "bad.buffy"
        ok.write_text(OK_SRC)
        bad.write_text(BAD_SRC)
        return str(ok), str(bad)

    def test_sigkilled_sweep_resumes_to_identical_verdicts(
        self, tmp_path, sources
    ):
        ok_file, bad_file = sources
        killed = str(tmp_path / "killed")
        control = str(tmp_path / "control")
        _submit_sweep(killed, ok_file, bad_file)
        _submit_sweep(control, ok_file, bad_file)

        # Run the sweep with the deterministic kill hook armed: the
        # process SIGKILLs itself right after its first job completes.
        proc = _repro(
            ["batch", "run", killed],
            extra_env={"REPRO_BATCH_KILL_AFTER": "1"},
        )
        assert proc.returncode == -signal.SIGKILL

        status = _repro(["batch", "status", killed]).stdout
        assert "1 done" in status          # exactly one finished pre-kill
        assert "pending" in status         # the rest were left behind

        # Resume finishes exactly the missing work.
        resumed = _repro(["batch", "resume", killed])
        # Exit 1: the sweep legitimately contains one violated job.
        assert resumed.returncode == 1, resumed.stderr
        assert "3 done" in resumed.stdout
        assert "deadletter" not in resumed.stdout

        # Control: the same sweep, never interrupted.
        ctrl = _repro(["batch", "run", control])
        assert ctrl.returncode == 1, ctrl.stderr

        killed_verdicts = _verdicts(killed)
        assert killed_verdicts == _verdicts(control)
        assert len(killed_verdicts) == 3
        assert sum("violated" in v for v in killed_verdicts) == 1

        # Cross-check through the result cache: both sweeps answered
        # exactly the same set of sub-queries (content-addressed keys),
        # so the resumed run derived the same results, not just the
        # same summary line.
        assert _cache_keys(killed) == _cache_keys(control)
        assert _cache_keys(killed)

        # Resume is idempotent: a third invocation replays the journal
        # and re-executes nothing.
        again = _repro(["batch", "resume", killed])
        assert again.returncode == 1
        assert "3 done" in again.stdout

    def test_resume_without_journal_is_a_usage_error(self, tmp_path):
        proc = _repro(["batch", "resume", str(tmp_path / "never-ran")])
        assert proc.returncode == 4  # EXIT_ERROR
        assert "nothing to resume" in proc.stderr
