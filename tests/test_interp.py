"""Tests for the reference interpreter (executable semantics)."""

import pytest

from repro.buffers.concrete import CounterBuffer
from repro.buffers.packets import Packet
from repro.lang.checker import check_program
from repro.lang.interp import (
    Interpreter,
    RandomOracle,
    ScriptedOracle,
    TraceInfeasible,
)
from repro.lang.parser import parse_program


def interp_for(src, **kwargs):
    return Interpreter(check_program(parse_program(src)), **kwargs)


class TestBasics:
    def test_move_semantics(self):
        it = interp_for("p(in buffer ib, out buffer ob){ move-p(ib, ob, 2); }")
        it.run_step({"ib": [Packet(flow=0), Packet(flow=1), Packet(flow=2)]})
        assert it.buffer("ib").backlog_p() == 1
        assert [p.flow for p in it.buffer("ob").packets()] == [0, 1]

    def test_move_clamps_to_available(self):
        it = interp_for("p(in buffer ib, out buffer ob){ move-p(ib, ob, 9); }")
        it.run_step({"ib": [Packet()]})
        assert it.buffer("ob").backlog_p() == 1

    def test_move_bytes(self):
        it = interp_for("p(in buffer ib, out buffer ob){ move-b(ib, ob, 4); }")
        it.run_step({"ib": [Packet(size=3), Packet(size=3)]})
        assert it.buffer("ob").backlog_p() == 1  # only one 3-byte pkt fits 4

    def test_globals_persist_locals_do_not(self):
        src = """\
        p(in buffer ib, out buffer ob){
          global int g; local int l;
          g = g + 1; l = l + 1;
          move-p(ib, ob, 0);
        }
        """
        it = interp_for(src)
        it.run_step({})
        it.run_step({})
        assert it.globals["g"] == 2

    def test_list_operations(self):
        src = """\
        p(in buffer ib, out buffer ob){
          global list l; local int x; monitor int got;
          l.push_back(4);
          l.push_back(7);
          x = l.pop_front();
          got = x;
          move-p(ib, ob, 0);
        }
        """
        it = interp_for(src)
        record = it.run_step({})
        assert record.monitors["got"] == 4
        assert list(it.globals["l"]) == [7]

    def test_pop_empty_yields_sentinel(self):
        src = """\
        p(in buffer ib, out buffer ob){
          global list l; local int x; monitor int got;
          x = l.pop_front();
          got = x;
          move-p(ib, ob, 0);
        }
        """
        record = interp_for(src).run_step({})
        assert record.monitors["got"] == -1

    def test_filtered_backlog(self):
        src = """\
        p(in buffer ib, out buffer ob){
          monitor int f0; monitor int bytes1;
          f0 = backlog-p(ib |> flow == 0);
          bytes1 = backlog-b(ib |> flow == 1);
          move-p(ib, ob, 0);
        }
        """
        it = interp_for(src)
        record = it.run_step({"ib": [
            Packet(flow=0), Packet(flow=0), Packet(flow=1, size=5),
        ]})
        assert record.monitors["f0"] == 2
        assert record.monitors["bytes1"] == 5

    def test_for_loop_and_arrays(self):
        src = """\
        p(in buffer[3] ibs, out buffer ob){
          monitor int total;
          for (i in 0..3) do {
            total = total + backlog-p(ibs[i]);
          }
          move-p(ibs[0], ob, 0);
        }
        """
        it = interp_for(src)
        record = it.run_step({"ibs[0]": [Packet()], "ibs[2]": [Packet()] * 2})
        assert record.monitors["total"] == 3

    def test_capacity_drops(self):
        it = interp_for(
            "p(in buffer ib, out buffer ob){ move-p(ib, ob, 0); }",
            buffer_capacity=2,
        )
        it.run_step({"ib": [Packet()] * 5})
        assert it.buffer("ib").backlog_p() == 2
        assert it.buffer("ib").stats.dropped_packets == 3


class TestAssertAssume:
    def test_assert_violation_recorded(self):
        src = """\
        p(in buffer ib, out buffer ob){
          assert(backlog-p(ib) == 0);
          move-p(ib, ob, 1);
        }
        """
        it = interp_for(src)
        trace = it.run([{"ib": [Packet()]}])
        assert len(trace.violations) == 1
        assert trace.violations[0].step == 0
        assert not trace.ok()

    def test_assume_violation_raises(self):
        src = """\
        p(in buffer ib, out buffer ob){
          assume(backlog-p(ib) == 0);
          move-p(ib, ob, 1);
        }
        """
        it = interp_for(src)
        with pytest.raises(TraceInfeasible):
            it.run_step({"ib": [Packet()]})

    def test_passing_assert_silent(self):
        src = "p(in buffer ib, out buffer ob){ assert(true);" \
              " move-p(ib, ob, 1); }"
        assert interp_for(src).run([{}]).ok()


class TestHavoc:
    SRC = """\
    p(in buffer ib, out buffer ob){
      local int x; monitor int got;
      havoc x in 2..5;
      got = x;
      move-p(ib, ob, 0);
    }
    """

    def test_random_oracle_respects_range(self):
        it = interp_for(self.SRC, oracle=RandomOracle(seed=3))
        for _ in range(20):
            record = it.run_step({})
            assert 2 <= record.monitors["got"] < 5

    def test_scripted_oracle_replays(self):
        oracle = ScriptedOracle({(0, "x", 0): 4, (1, "x", 0): 2})
        it = interp_for(self.SRC, oracle=oracle)
        assert it.run_step({}).monitors["got"] == 4
        assert it.run_step({}).monitors["got"] == 2


class TestProcedures:
    def test_call_by_reference_buffer(self):
        src = """\
        p(in buffer ib, out buffer ob){
          def relay(buffer src, buffer dst, int n){
            move-p(src, dst, n);
          }
          relay(ib, ob, 2);
        }
        """
        it = interp_for(src)
        it.run_step({"ib": [Packet()] * 3})
        assert it.buffer("ob").backlog_p() == 2

    def test_scalars_by_value(self):
        src = """\
        p(in buffer ib, out buffer ob){
          monitor int m; local int x;
          def bump(int v){ v = v + 1; }
          x = 5;
          bump(x);
          m = x;
          move-p(ib, ob, 0);
        }
        """
        record = interp_for(src).run_step({})
        assert record.monitors["m"] == 5


class TestCounterModelInterp:
    def test_counter_buffers(self):
        src = "p(in buffer ib, out buffer ob){ move-p(ib, ob, 2); }"
        it = Interpreter(
            check_program(parse_program(src)), buffer_factory=CounterBuffer
        )
        it.run_step({"ib": [Packet(flow=1), Packet(flow=0), Packet(flow=1)]})
        assert it.buffer("ib").backlog_p() == 1
        # lowest-flow-first drain: flows 0 and 1 left the buffer
        assert it.buffer("ob").backlog_p("flow", 0) == 1
        assert it.buffer("ob").backlog_p("flow", 1) == 1


class TestScheduling:
    def test_fq_buggy_starves(self):
        from repro.netmodels.schedulers import fq_buggy

        it = Interpreter(fq_buggy(2))
        workload = [{"ibs[0]": [Packet(flow=0)] * 6}] + [
            {"ibs[1]": [Packet(flow=1)]} for _ in range(7)
        ]
        it.run(workload)
        flows = [p.flow for p in it.buffer("ob").packets()]
        assert flows.count(0) == 1  # served once, then starved

    def test_fq_fixed_alternates(self):
        from repro.netmodels.schedulers import fq_fixed

        it = Interpreter(fq_fixed(2))
        workload = [{"ibs[0]": [Packet(flow=0)] * 6}] + [
            {"ibs[1]": [Packet(flow=1)]} for _ in range(7)
        ]
        it.run(workload)
        flows = [p.flow for p in it.buffer("ob").packets()]
        assert flows.count(0) >= 3

    def test_rr_alternates(self):
        from repro.netmodels.schedulers import round_robin

        it = Interpreter(round_robin(3))
        it.run([{"ibs[0]": [Packet(flow=0)] * 3,
                 "ibs[2]": [Packet(flow=2)] * 3}] + [{}] * 5)
        flows = [p.flow for p in it.buffer("ob").packets()]
        assert flows == [0, 2, 0, 2, 0, 2]

    def test_priority_strictness(self):
        from repro.netmodels.schedulers import strict_priority

        it = Interpreter(strict_priority(2))
        it.run([{"ibs[0]": [Packet(flow=0)] * 2,
                 "ibs[1]": [Packet(flow=1)]}] + [{}] * 2)
        flows = [p.flow for p in it.buffer("ob").packets()]
        assert flows == [0, 0, 1]

    def test_reset(self):
        from repro.netmodels.schedulers import round_robin

        it = Interpreter(round_robin(2))
        it.run([{"ibs[0]": [Packet()]}])
        it.reset()
        assert it.step_index == 0
        assert it.buffer("ob").backlog_p() == 0
