"""Tests for the seeded fault-injection harness (repro.runtime.chaos)."""

import pytest

from repro.runtime import (
    ChaosConfig,
    ChaosMonkey,
    ExhaustionReason,
    InjectedFault,
    SolverFault,
    inject_faults,
)
from repro.smt.solver import CheckResult, SmtSolver, governed_check
from repro.smt.terms import mk_int, mk_int_var, mk_le


def _solver_with_simple_formula():
    solver = SmtSolver()
    x = mk_int_var("x")
    solver.set_bounds("x", 0, 10)
    solver.add(mk_le(mk_int(3), x))
    return solver


class TestChaosMonkey:
    def test_deterministic_schedule_by_seed(self):
        def run(seed):
            monkey = ChaosMonkey(ChaosConfig(seed=seed, unknown_rate=0.5))
            out = []
            for _ in range(32):
                out.append(monkey.intercept())
            return out

        assert run(7) == run(7)
        assert run(7) != run(8)  # overwhelmingly likely for 32 draws

    def test_rates_zero_is_transparent(self):
        monkey = ChaosMonkey(ChaosConfig(seed=0))
        assert all(monkey.intercept() is None for _ in range(16))
        assert monkey.log.schedule == ["ok"] * 16

    def test_fault_raises_injected_fault(self):
        monkey = ChaosMonkey(ChaosConfig(seed=0, fault_rate=1.0))
        with pytest.raises(InjectedFault):
            monkey.intercept()
        assert monkey.log.faults == 1

    def test_injected_fault_is_a_solver_fault(self):
        assert issubclass(InjectedFault, SolverFault)


class TestInjectFaults:
    def test_installs_and_restores(self):
        assert SmtSolver._chaos is None
        with inject_faults(seed=1, unknown_rate=1.0) as monkey:
            assert SmtSolver._chaos is monkey
        assert SmtSolver._chaos is None

    def test_restores_even_on_error(self):
        with pytest.raises(RuntimeError):
            with inject_faults(seed=1):
                raise RuntimeError("boom")
        assert SmtSolver._chaos is None

    def test_injected_unknown_has_report(self):
        solver = _solver_with_simple_formula()
        with inject_faults(seed=3, unknown_rate=1.0) as monkey:
            result = solver.check()
        assert result is CheckResult.UNKNOWN
        assert solver.last_report.reason is ExhaustionReason.INJECTED
        assert monkey.log.unknowns == 1
        with pytest.raises(RuntimeError, match="UNKNOWN"):
            solver.model()

    def test_injected_fault_propagates_from_raw_check(self):
        solver = _solver_with_simple_formula()
        with inject_faults(seed=3, fault_rate=1.0):
            with pytest.raises(InjectedFault):
                solver.check()

    def test_governed_check_isolates_fault(self):
        solver = _solver_with_simple_formula()
        with inject_faults(seed=3, fault_rate=1.0):
            result, report = governed_check(solver)
        assert result is CheckResult.UNKNOWN
        assert report.reason is ExhaustionReason.FAULT
        assert "injected solver fault" in report.message

    def test_solving_resumes_after_scope(self):
        solver = _solver_with_simple_formula()
        with inject_faults(seed=3, unknown_rate=1.0):
            assert solver.check() is CheckResult.UNKNOWN
        assert solver.check() is CheckResult.SAT
        assert int(solver.model()[mk_int_var("x")]) >= 3

    def test_delay_injection_trips_deadline(self):
        from repro.runtime import Budget

        solver = _solver_with_simple_formula()
        solver.budget = Budget(deadline_seconds=0.01)
        with inject_faults(seed=3, delay_rate=1.0, delay_seconds=0.05):
            result = solver.check()
        # The injected sleep consumed the whole deadline: the encode
        # safepoints must stop the run with a DEADLINE report.
        assert result is CheckResult.UNKNOWN
        assert solver.last_report.reason is ExhaustionReason.DEADLINE


class TestChaosFromEnv:
    def _fresh_warning_state(self):
        import repro.runtime.chaos as chaos_mod

        chaos_mod._warned_unknown_env = False
        return chaos_mod

    def test_round_trip_covers_every_hook_kind(self):
        """Every ENV_RATE_KNOBS variable lands on its ChaosConfig
        field, and the tuning knobs ride along — nothing is silently
        dropped between the environment and the installed monkey."""
        from repro.runtime.chaos import (
            _ENV_PREFIX,
            ENV_RATE_KNOBS,
            chaos_from_env,
        )

        environ = {
            _ENV_PREFIX + suffix: "0.25" for suffix in ENV_RATE_KNOBS
        }
        environ.update({
            _ENV_PREFIX + "SEED": "9",
            _ENV_PREFIX + "DELAY_SECONDS": "0.002",
            _ENV_PREFIX + "SLOW_CLIENT_SECONDS": "0.03",
            _ENV_PREFIX + "PARTITION_SPAN": "6",
            _ENV_PREFIX + "LEASE_SKEW_SECONDS": "45",
        })
        with chaos_from_env(environ):
            monkey = SmtSolver._chaos
            assert monkey is not None
            for field_name in ENV_RATE_KNOBS.values():
                assert getattr(monkey.config, field_name) == 0.25, \
                    field_name
            assert monkey.config.seed == 9
            assert monkey.config.delay_seconds == 0.002
            assert monkey.config.slow_client_seconds == 0.03
            assert monkey.config.partition_span == 6
            assert monkey.config.lease_skew_seconds == 45.0
        assert SmtSolver._chaos is None

    def test_all_rates_zero_is_a_null_context(self):
        from repro.runtime.chaos import chaos_from_env

        with chaos_from_env({}):
            assert SmtSolver._chaos is None

    def test_unknown_variables_warn_once_listing_valid_knobs(
            self, capsys):
        chaos_mod = self._fresh_warning_state()
        environ = {
            "REPRO_CHAOS_BOGUS": "1",
            "REPRO_CHAOS_IO_EROR": "0.5",  # the typo this guards
            "REPRO_CHAOS_IO_ERROR": "0.5",  # valid: must not warn
        }
        with chaos_mod.chaos_from_env(environ):
            pass
        err = capsys.readouterr().err
        assert "REPRO_CHAOS_BOGUS" in err
        assert "REPRO_CHAOS_IO_EROR," in err or \
            "REPRO_CHAOS_IO_EROR\n" in err or \
            err.count("REPRO_CHAOS_IO_EROR") >= 1
        # The valid-knob listing names every settable variable.
        for suffix in chaos_mod.ENV_RATE_KNOBS:
            assert "REPRO_CHAOS_" + suffix in err
        assert "REPRO_CHAOS_WORKER_CRASH" in err
        # Once per process: a second entry stays quiet.
        with chaos_mod.chaos_from_env(environ):
            pass
        assert capsys.readouterr().err == ""

    def test_recognized_variables_never_warn(self, capsys):
        chaos_mod = self._fresh_warning_state()
        environ = {
            "REPRO_CHAOS_IO_ERROR": "0.1",
            "REPRO_CHAOS_WORKER_CRASH": "0.5",
            "REPRO_CHAOS_WORKER_MAX_CRASHES": "2",
            "REPRO_CHAOS_SEED": "3",
        }
        with chaos_mod.chaos_from_env(environ):
            pass
        assert capsys.readouterr().err == ""
