"""Tests for the static checker: types, ghost discipline, boundedness."""

import pytest

from repro.lang.checker import CheckError, check_program
from repro.lang.parser import parse_program


def check(src, **consts):
    return check_program(parse_program(src, consts=consts or None))


class TestTypes:
    def test_valid_program(self):
        checked = check(
            "p(in buffer ib, out buffer ob){ move-p(ib, ob, 1); }"
        )
        assert checked.name == "p"

    def test_undeclared_variable(self):
        with pytest.raises(CheckError, match="undeclared"):
            check("p(in buffer ib, out buffer ob){ x = 1; move-p(ib, ob, 1);}")

    def test_bool_int_mismatch(self):
        with pytest.raises(CheckError):
            check("p(in buffer ib, out buffer ob){ local int x; x = true;"
                  " move-p(ib, ob, 1);}")

    def test_if_condition_must_be_bool(self):
        with pytest.raises(CheckError):
            check("p(in buffer ib, out buffer ob){ if (3) { move-p(ib, ob, 1);}}")

    def test_arith_on_bool(self):
        with pytest.raises(CheckError):
            check("p(in buffer ib, out buffer ob){ local bool b;"
                  " local int x; x = b + 1; move-p(ib, ob, 1);}")

    def test_index_non_array(self):
        with pytest.raises(CheckError):
            check("p(in buffer ib, out buffer ob){ local int x; x = x[0];"
                  " move-p(ib, ob, 1);}")

    def test_move_amount_must_be_int(self):
        with pytest.raises(CheckError):
            check("p(in buffer ib, out buffer ob){ move-p(ib, ob, true); }")

    def test_list_method_on_non_list(self):
        with pytest.raises(CheckError):
            check("p(in buffer ib, out buffer ob){ local int x;"
                  " if (x.empty()) {} move-p(ib, ob, 1);}")

    def test_unknown_packet_field(self):
        with pytest.raises(CheckError, match="field"):
            check("p(in buffer ib, out buffer ob){ local int x;"
                  " x = backlog-p(ib |> color == 1); move-p(ib, ob, 1);}")

    def test_duplicate_declaration(self):
        with pytest.raises(CheckError, match="duplicate"):
            check("p(in buffer ib, out buffer ob){ global int x;"
                  " global int x; move-p(ib, ob, 1);}")

    def test_assign_to_const(self):
        with pytest.raises(CheckError):
            check("p(in buffer ib, out buffer ob){ const int K = 2;"
                  " K = 3; move-p(ib, ob, 1);}")


class TestBoundedness:
    def test_variable_loop_bound_rejected(self):
        with pytest.raises(CheckError, match="constant"):
            check("p(in buffer ib, out buffer ob){ local int n; n = 3;"
                  " for (i in 0..n) do { move-p(ib, ob, 1);}}")

    def test_const_expression_loop_bound(self):
        check("p(in buffer ib, out buffer ob){ const int K = 2;"
              " for (i in 0..K * 2) do { move-p(ib, ob, 1);}}")

    def test_backlog_is_not_a_constant_bound(self):
        with pytest.raises(CheckError, match="constant"):
            check("p(in buffer ib, out buffer ob){"
                  " for (i in 0..backlog-p(ib)) do { move-p(ib, ob, 1);}}")


class TestMonitorDiscipline:
    def test_monitor_cannot_drive_control_flow(self):
        with pytest.raises(CheckError, match="ghost"):
            check("p(in buffer ib, out buffer ob){ monitor int m;"
                  " if (m > 0) { move-p(ib, ob, 1);}}")

    def test_monitor_cannot_feed_move(self):
        with pytest.raises(CheckError, match="ghost"):
            check("p(in buffer ib, out buffer ob){ monitor int m;"
                  " move-p(ib, ob, m);}")

    def test_monitor_update_may_read_state(self):
        check("p(in buffer ib, out buffer ob){ monitor int m; local int x;"
              " x = 1; m = m + x; move-p(ib, ob, 1);}")

    def test_assert_may_read_monitor(self):
        check("p(in buffer ib, out buffer ob){ monitor int m;"
              " assert(m >= 0); move-p(ib, ob, 1);}")

    def test_assume_may_read_monitor(self):
        check("p(in buffer ib, out buffer ob){ monitor int m;"
              " assume(m >= 0); move-p(ib, ob, 1);}")


class TestBufferDirections:
    def test_annotated_out_is_write_only(self):
        with pytest.raises(CheckError, match="write-only"):
            check("p(in buffer a, out buffer b){ move-p(b, a, 1); }")

    def test_inference_conflict(self):
        with pytest.raises(CheckError, match="annotate"):
            check("p(buffer a, buffer b, buffer c){"
                  " move-p(a, b, 1); move-p(b, c, 1); }")

    def test_scalar_param_rejected(self):
        # Program parameters must be buffers.
        with pytest.raises(Exception):
            check("p(int x, out buffer b){ move-p(b, b, 1); }")


class TestProcedures:
    def test_unknown_procedure(self):
        with pytest.raises(CheckError, match="unknown procedure"):
            check("p(in buffer ib, out buffer ob){ foo(1); move-p(ib, ob, 1);}")

    def test_arity_mismatch(self):
        with pytest.raises(CheckError, match="argument"):
            check("p(in buffer ib, out buffer ob){"
                  " def f(int x){ ; } f(1, 2); move-p(ib, ob, 1);}")

    def test_buffer_passed_by_reference(self):
        # Aggregates are by-reference; a buffer variable is a valid argument.
        check("p(in buffer ib, out buffer ob){ def f(buffer b, buffer o){"
              " move-p(b, o, 1);} f(ib, ob); }")

    def test_arg_type_mismatch(self):
        with pytest.raises(CheckError):
            check("p(in buffer ib, out buffer ob){ def f(int x){ ; }"
                  " f(true); move-p(ib, ob, 1);}")


class TestHavoc:
    def test_havoc_scalar_ok(self):
        check("p(in buffer ib, out buffer ob){ local int x;"
              " havoc x in 0..4; move-p(ib, ob, x);}")

    def test_havoc_list_rejected(self):
        with pytest.raises(CheckError):
            check("p(in buffer ib, out buffer ob){ global list l;"
                  " havoc l; move-p(ib, ob, 1);}")
