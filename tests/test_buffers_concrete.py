"""Tests for concrete buffer models and packets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.concrete import CounterBuffer, ListBuffer
from repro.buffers.packets import Packet


class TestPacket:
    def test_fields(self):
        p = Packet.of(flow=2, size=3, prio=1)
        assert p.get("flow") == 2
        assert p.get("size") == 3
        assert p.get("prio") == 1
        with pytest.raises(KeyError):
            p.get("nope")

    def test_matches(self):
        p = Packet(flow=1)
        assert p.matches("flow", 1)
        assert not p.matches("flow", 2)
        assert not p.matches("unknown", 0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(size=-1)


class TestListBuffer:
    def test_fifo_order(self):
        buf = ListBuffer()
        for i in range(4):
            buf.enqueue(Packet(flow=i))
        out = buf.dequeue_packets(4)
        assert [p.flow for p in out] == [0, 1, 2, 3]

    def test_capacity_and_drops(self):
        buf = ListBuffer(capacity=2)
        assert buf.enqueue(Packet())
        assert buf.enqueue(Packet())
        assert not buf.enqueue(Packet(size=5))
        assert buf.stats.dropped_packets == 1
        assert buf.stats.dropped_bytes == 5
        assert buf.backlog_p() == 2

    def test_backlog_with_filter(self):
        buf = ListBuffer()
        buf.enqueue(Packet(flow=0, size=2))
        buf.enqueue(Packet(flow=1, size=3))
        buf.enqueue(Packet(flow=0, size=4))
        assert buf.backlog_p("flow", 0) == 2
        assert buf.backlog_b("flow", 0) == 6
        assert buf.backlog_b() == 9

    def test_dequeue_more_than_available(self):
        buf = ListBuffer()
        buf.enqueue(Packet())
        assert len(buf.dequeue_packets(5)) == 1
        assert buf.dequeue_packets(1) == []

    def test_dequeue_negative(self):
        buf = ListBuffer()
        buf.enqueue(Packet())
        assert buf.dequeue_packets(-2) == []

    def test_dequeue_bytes_whole_packets(self):
        buf = ListBuffer()
        buf.enqueue(Packet(size=3))
        buf.enqueue(Packet(size=3))
        out = buf.dequeue_bytes(5)
        assert len(out) == 1  # second packet would exceed the budget
        assert buf.backlog_p() == 1

    def test_stats_accumulate(self):
        buf = ListBuffer()
        buf.enqueue(Packet(size=2))
        buf.dequeue_packets(1)
        assert buf.stats.enqueued_packets == 1
        assert buf.stats.enqueued_bytes == 2
        assert buf.stats.dequeued_packets == 1
        assert buf.stats.dequeued_bytes == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ListBuffer(capacity=0)


class TestCounterBuffer:
    def test_counts_per_flow(self):
        buf = CounterBuffer()
        buf.enqueue(Packet(flow=0))
        buf.enqueue(Packet(flow=1))
        buf.enqueue(Packet(flow=1))
        assert buf.backlog_p() == 3
        assert buf.backlog_p("flow", 1) == 2
        assert buf.backlog_p("flow", 7) == 0

    def test_only_flow_field(self):
        buf = CounterBuffer()
        buf.enqueue(Packet(flow=0))
        with pytest.raises(ValueError):
            buf.backlog_p("size", 1)

    def test_dequeue_lowest_flow_first(self):
        buf = CounterBuffer()
        buf.enqueue(Packet(flow=2))
        buf.enqueue(Packet(flow=0))
        out = buf.dequeue_packets(2)
        assert [p.flow for p in out] == [0, 2]

    def test_capacity(self):
        buf = CounterBuffer(capacity=1)
        assert buf.enqueue(Packet(flow=0))
        assert not buf.enqueue(Packet(flow=1))
        assert buf.stats.dropped_packets == 1

    def test_snapshot(self):
        buf = CounterBuffer()
        buf.enqueue(Packet(flow=1))
        buf.enqueue(Packet(flow=1))
        assert buf.snapshot() == ((1, 2),)


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=40))
@settings(max_examples=60, deadline=None)
def test_list_and_counter_agree_on_counts(ops):
    """Property: both precision levels agree on per-flow packet counts
    under any interleaving of (enqueue flow f | dequeue one)."""
    precise = ListBuffer()
    coarse = CounterBuffer()
    for is_enq, flow in ops:
        if is_enq:
            precise.enqueue(Packet(flow=flow))
            coarse.enqueue(Packet(flow=flow))
        else:
            # Both drain "one packet"; the coarse model picks the lowest
            # flow, so drive the precise model to do the same by checking
            # aggregate counts only after the run.
            precise.dequeue_packets(0)
    assert precise.backlog_p() == coarse.backlog_p()
    for flow in range(4):
        assert precise.backlog_p("flow", flow) == coarse.backlog_p("flow", flow)


@given(st.lists(st.integers(0, 2), min_size=0, max_size=30),
       st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_conservation_property(flows, capacity):
    """enqueued == dequeued + dropped + backlog, always."""
    buf = ListBuffer(capacity=capacity)
    for flow in flows:
        buf.enqueue(Packet(flow=flow))
    buf.dequeue_packets(len(flows) // 2)
    stats = buf.stats
    assert stats.enqueued_packets == (
        stats.dequeued_packets + buf.backlog_p()
    )
    assert stats.enqueued_packets + stats.dropped_packets == len(flows)
