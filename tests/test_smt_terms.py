"""Unit tests for the hash-consed term layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sorts import BOOL, INT
from repro.smt.terms import (
    FALSE,
    ONE,
    TRUE,
    ZERO,
    Op,
    dag_size,
    evaluate,
    free_vars,
    fresh_var,
    iter_dag,
    mk_add,
    mk_and,
    mk_bool,
    mk_bool_to_int,
    mk_bool_var,
    mk_distinct,
    mk_eq,
    mk_implies,
    mk_int,
    mk_int_var,
    mk_ite,
    mk_le,
    mk_lt,
    mk_max,
    mk_min,
    mk_mul,
    mk_neg,
    mk_not,
    mk_or,
    mk_sub,
    mk_sum,
    mk_var,
    mk_xor,
    substitute,
    to_sexpr,
)


class TestInterning:
    def test_same_var_is_identical(self):
        assert mk_int_var("a") is mk_int_var("a")
        assert mk_bool_var("b") is mk_bool_var("b")

    def test_same_structure_is_identical(self):
        x, y = mk_int_var("x"), mk_int_var("y")
        assert mk_add(x, y) is mk_add(x, y)

    def test_bool_and_int_constants_do_not_collide(self):
        # Regression: Python's False == 0 collided Bool and Int constants
        # in the interning table.
        assert mk_int(0) is not mk_bool(False)
        assert mk_int(1) is not mk_bool(True)
        assert ZERO.sort is INT
        assert FALSE.sort is BOOL

    def test_var_sorts_distinct(self):
        assert mk_var("v", INT) is not mk_var("v", BOOL)

    def test_fresh_vars_unique(self):
        assert fresh_var("t", INT) is not fresh_var("t", INT)


class TestBooleanConstructors:
    def test_and_simplifications(self):
        p = mk_bool_var("p")
        assert mk_and() is TRUE
        assert mk_and(p) is p
        assert mk_and(p, TRUE) is p
        assert mk_and(p, FALSE) is FALSE
        assert mk_and(p, p) is p
        assert mk_and(p, mk_not(p)) is FALSE

    def test_or_simplifications(self):
        p = mk_bool_var("p")
        assert mk_or() is FALSE
        assert mk_or(p, FALSE) is p
        assert mk_or(p, TRUE) is TRUE
        assert mk_or(p, mk_not(p)) is TRUE

    def test_and_flattening(self):
        p, q, r = (mk_bool_var(n) for n in "pqr")
        nested = mk_and(p, mk_and(q, r))
        assert nested.op is Op.AND
        assert len(nested.args) == 3

    def test_not_involution(self):
        p = mk_bool_var("p")
        assert mk_not(mk_not(p)) is p
        assert mk_not(TRUE) is FALSE

    def test_implies(self):
        p, q = mk_bool_var("p"), mk_bool_var("q")
        assert mk_implies(TRUE, q) is q
        assert mk_implies(FALSE, q) is TRUE
        assert mk_implies(p, TRUE) is TRUE
        assert mk_implies(p, p) is TRUE

    def test_xor(self):
        p, q = mk_bool_var("p"), mk_bool_var("q")
        assert mk_xor(p, p) is FALSE
        assert mk_xor(p, FALSE) is p
        assert mk_xor(p, TRUE) is mk_not(p)
        assert mk_xor(p, q) is mk_xor(q, p)

    def test_bool_ite_encodes_with_connectives(self):
        c, p, q = (mk_bool_var(n) for n in "cpq")
        ite = mk_ite(c, p, q)
        assert ite.op in (Op.AND, Op.OR)
        for cv in (False, True):
            for pv in (False, True):
                for qv in (False, True):
                    expected = pv if cv else qv
                    got = evaluate(ite, {"c": cv, "p": pv, "q": qv})
                    assert got == expected


class TestArithmeticConstructors:
    def test_add_constant_folding(self):
        x = mk_int_var("x")
        assert mk_add(mk_int(2), mk_int(3)) is mk_int(5)
        assert mk_add(x, mk_int(0)) is x

    def test_add_flattens_and_gathers_constants(self):
        x, y = mk_int_var("x"), mk_int_var("y")
        term = mk_add(mk_add(x, mk_int(2)), mk_add(y, mk_int(3)))
        consts = [a for a in term.args if a.is_const]
        assert len(consts) == 1 and consts[0].value == 5

    def test_sub(self):
        x = mk_int_var("x")
        assert mk_sub(x, ZERO) is x
        assert mk_sub(x, x) is ZERO
        assert mk_sub(mk_int(7), mk_int(3)) is mk_int(4)

    def test_neg(self):
        x = mk_int_var("x")
        assert mk_neg(mk_neg(x)) is x
        assert mk_neg(mk_int(5)) is mk_int(-5)

    def test_mul(self):
        x = mk_int_var("x")
        assert mk_mul(x, ONE) is x
        assert mk_mul(x, ZERO) is ZERO
        assert mk_mul(x, mk_int(-1)) is mk_neg(x)
        assert mk_mul(mk_int(3), mk_int(4)) is mk_int(12)

    def test_comparisons_fold(self):
        assert mk_lt(mk_int(1), mk_int(2)) is TRUE
        assert mk_le(mk_int(2), mk_int(2)) is TRUE
        assert mk_lt(mk_int(2), mk_int(2)) is FALSE
        x = mk_int_var("x")
        assert mk_lt(x, x) is FALSE
        assert mk_le(x, x) is TRUE

    def test_eq(self):
        x, y = mk_int_var("x"), mk_int_var("y")
        assert mk_eq(x, x) is TRUE
        assert mk_eq(mk_int(1), mk_int(2)) is FALSE
        assert mk_eq(x, y) is mk_eq(y, x)

    def test_min_max(self):
        assert evaluate(mk_min(mk_int_var("x"), mk_int(3)), {"x": 5}) == 3
        assert evaluate(mk_max(mk_int_var("x"), mk_int(3)), {"x": 5}) == 5

    def test_sum_and_bool_to_int(self):
        assert mk_sum([]) is ZERO
        b = mk_bool_var("b")
        assert evaluate(mk_bool_to_int(b), {"b": True}) == 1
        assert evaluate(mk_bool_to_int(b), {"b": False}) == 0

    def test_distinct(self):
        x, y, z = (mk_int_var(n) for n in "xyz")
        d = mk_distinct(x, y, z)
        assert evaluate(d, {"x": 1, "y": 2, "z": 3}) is True
        assert evaluate(d, {"x": 1, "y": 2, "z": 1}) is False


class TestTypeErrors:
    def test_bool_arg_to_arith(self):
        with pytest.raises(TypeError):
            mk_add(mk_bool_var("p"), mk_int(1))

    def test_int_arg_to_and(self):
        with pytest.raises(TypeError):
            mk_and(mk_int_var("x"), TRUE)

    def test_eq_sort_mismatch(self):
        with pytest.raises(TypeError):
            mk_eq(mk_int_var("x"), mk_bool_var("p"))

    def test_ite_branch_mismatch(self):
        with pytest.raises(TypeError):
            mk_ite(TRUE, mk_int(1), mk_bool(True))

    def test_mk_int_rejects_bool(self):
        with pytest.raises(TypeError):
            mk_int(True)


class TestOperatorOverloading:
    def test_python_operators(self):
        x, y = mk_int_var("x"), mk_int_var("y")
        f = ((x + y) * mk_int(2) <= mk_int(10)) & x.eq(y)
        assert evaluate(f, {"x": 2, "y": 2}) is True
        assert evaluate(f, {"x": 3, "y": 3}) is False

    def test_reflected_int_operators(self):
        x = mk_int_var("x")
        assert evaluate(1 + x, {"x": 2}) == 3
        assert evaluate(5 - x, {"x": 2}) == 3
        assert evaluate(3 * x, {"x": 2}) == 6

    def test_comparison_chain(self):
        x = mk_int_var("x")
        assert (x > mk_int(2)).sort is BOOL
        assert (x >= mk_int(2)).sort is BOOL

    def test_immutability(self):
        x = mk_int_var("x")
        with pytest.raises(AttributeError):
            x.op = Op.CONST


class TestTraversal:
    def test_free_vars(self):
        x, y = mk_int_var("x"), mk_int_var("y")
        f = mk_and(x < y, mk_bool_var("p"))
        names = {v.name for v in free_vars(f)}
        assert names == {"x", "y", "p"}

    def test_dag_size_counts_shared_once(self):
        x = mk_int_var("x")
        shared = x + x  # one ADD node over x... folds to form with const?
        f = mk_eq(shared, shared)
        assert f is TRUE  # identical operands fold

    def test_iter_dag_postorder(self):
        x, y = mk_int_var("x"), mk_int_var("y")
        f = x + y
        nodes = list(iter_dag(f))
        assert nodes[-1] is f
        assert all(
            arg in nodes[: nodes.index(node)]
            for node in nodes
            for arg in node.args
        )

    def test_substitute(self):
        x, y, z = (mk_int_var(n) for n in "xyz")
        f = (x + y) < z
        g = substitute(f, {x: mk_int(1), y: mk_int(2)})
        assert evaluate(g, {"z": 4}) is True
        assert evaluate(g, {"z": 3}) is False

    def test_substitute_sort_mismatch(self):
        x = mk_int_var("x")
        with pytest.raises(TypeError):
            substitute(x + x, {x: mk_bool_var("p")})

    def test_to_sexpr(self):
        x = mk_int_var("x")
        assert "(+" in to_sexpr(x + mk_int(1)) or "(+ " in to_sexpr(x + mk_int(1))
        assert to_sexpr(mk_int(-3)) == "(- 3)"


@given(
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
)
@settings(max_examples=50, deadline=None)
def test_arith_constructors_agree_with_python(a, b):
    """Constant folding must agree with Python integer arithmetic."""
    ta, tb = mk_int(a), mk_int(b)
    assert mk_add(ta, tb).value == a + b
    assert mk_sub(ta, tb).value == a - b
    assert mk_mul(ta, tb).value == a * b
    assert mk_lt(ta, tb) is mk_bool(a < b)
    assert mk_le(ta, tb) is mk_bool(a <= b)


@given(st.integers(min_value=-8, max_value=8), st.integers(min_value=-8, max_value=8))
@settings(max_examples=50, deadline=None)
def test_evaluate_matches_semantics(a, b):
    x, y = mk_int_var("x"), mk_int_var("y")
    env = {"x": a, "y": b}
    assert evaluate(mk_min(x, y), env) == min(a, b)
    assert evaluate(mk_max(x, y), env) == max(a, b)
    assert evaluate(mk_ite(x < y, x, y), env) == min(a, b)
