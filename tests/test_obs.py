"""The :mod:`repro.obs` observability layer.

Covers the observability tentpole: span nesting and attribution,
metric series semantics (counter add / gauge last-write-wins /
histogram bucket merge), Chrome trace-event schema validity,
cross-process metric aggregation from the ``REPRO_JOBS=2`` portfolio
pool, the per-solve vs lifetime CDCL stats split, and the guard that
keeps disabled telemetry near-free (<2% of the smallest SAT-ablation
workload).
"""

import json
import os
import time
from pathlib import Path

import pytest

import repro
from repro import obs
from repro.backends.dafny import DafnyBackend
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import fq_buggy
from repro.obs import METRICS, TRACER, MetricsRegistry, TelemetrySnapshot
from repro.obs.export import snapshot_from_chrome_trace
from repro.obs.tracer import Tracer, _NULL_SPAN
from repro.smt.sat.cdcl import CDCLSolver, SatResult
from repro.smt.terms import mk_le

EXAMPLE = Path(__file__).resolve().parent.parent / "examples" / "model.buffy"


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Tests share the process-wide TRACER/METRICS; keep them pristine."""
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


# ----- spans -----------------------------------------------------------------


class TestSpans:
    def test_disabled_span_is_a_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("parse") is _NULL_SPAN
        assert tracer.span("cdcl", rung=3) is _NULL_SPAN
        with tracer.span("anything") as sp:
            sp.set("key", "value")  # must not raise, must not record
        assert tracer.records == []

    def test_nesting_and_attribution(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("check", path="oneshot") as outer:
            with tracer.span("cdcl") as inner:
                assert inner.parent_id == outer.span_id
            outer.set("result", "sat")
        # Children finish (and are recorded) before their parents.
        assert [r.name for r in tracer.records] == ["cdcl", "check"]
        cdcl, check = tracer.records
        assert check.parent_id == 0
        assert cdcl.parent_id == check.span_id
        assert check.attrs == {"path": "oneshot", "result": "sat"}
        assert check.wall >= cdcl.wall >= 0
        assert check.pid == os.getpid()

    def test_exception_is_attributed_and_span_closed(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("vc"):
                raise ValueError("boom")
        (record,) = tracer.records
        assert record.attrs["error"] == "ValueError"
        assert tracer.stack_depth() == 0  # unwound cleanly

    def test_merge_preserves_foreign_records(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("local"):
            pass
        foreign = [{"name": "portfolio-rung", "ts": 1.0, "wall": 0.5,
                    "cpu": 0.4, "span_id": 1, "parent_id": 0,
                    "pid": 99999, "attrs": {"slot": 0}}]
        tracer.merge(foreign)
        names = {r.name for r in tracer.records}
        assert names == {"local", "portfolio-rung"}
        merged = next(r for r in tracer.records if r.pid == 99999)
        assert merged.attrs == {"slot": 0}

    def test_finished_spans_feed_the_span_histogram(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        tracer.metrics = registry
        tracer.enable()
        registry.enable()
        with tracer.span("typecheck"):
            pass
        snap = registry.snapshot()
        (hist,) = snap["histograms"]
        assert hist["name"] == "repro_span_seconds"
        assert hist["labels"] == {"span": "typecheck"}
        assert hist["count"] == 1


# ----- distributed trace context ---------------------------------------------


class TestTraceContext:
    def test_traceparent_round_trip(self):
        from repro.obs import make_traceparent, parse_traceparent

        tp = make_traceparent()
        parsed = parse_traceparent(tp)
        assert parsed is not None
        trace_id, span_id = parsed
        assert len(trace_id) == 32 and int(trace_id, 16) != 0
        assert span_id != 0

    def test_parse_rejects_malformed_and_zero_ids(self):
        from repro.obs import parse_traceparent

        assert parse_traceparent(None) is None
        assert parse_traceparent("") is None
        assert parse_traceparent("not-a-traceparent") is None
        assert parse_traceparent("00-" + "0" * 32 + "-" + "1" * 16 + "-01") \
            is None
        assert parse_traceparent("00-" + "a" * 32 + "-" + "0" * 16 + "-01") \
            is None

    def test_activate_adopts_remote_parent(self):
        from repro.obs import parse_traceparent

        tracer = Tracer()
        tracer.enable()
        tp = "00-" + "ab" * 16 + "-" + "12" * 8 + "-01"
        trace_id, span_id = parse_traceparent(tp)
        with tracer.activate(tp):
            assert tracer.current_trace_id() == trace_id
            with tracer.span("child") as sp:
                assert sp.trace_id == trace_id
                assert sp.parent_id == span_id
        # Context restored: a fresh root mints its own trace.
        with tracer.span("root") as sp:
            assert sp.trace_id != trace_id

    def test_root_span_mints_trace_and_children_share_it(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a") as a:
            assert tracer.traceparent() is not None
            with tracer.span("b") as b:
                assert b.trace_id == a.trace_id
        with tracer.span("c") as c:
            assert c.trace_id != a.trace_id  # new root, new trace

    def test_interleaved_async_requests_keep_their_own_stacks(self):
        """Regression: the span stack is contextvar-scoped, so two
        concurrently-traced asyncio requests must not parent their
        spans under each other (the old list-based ``_stack`` did)."""
        import asyncio

        tracer = Tracer()
        tracer.enable()

        async def request(name):
            with tracer.span(f"req-{name}") as outer:
                await asyncio.sleep(0.01)  # force interleaving
                with tracer.span(f"inner-{name}") as inner:
                    await asyncio.sleep(0.01)
                    assert inner.parent_id == outer.span_id
                    assert inner.trace_id == outer.trace_id
                return outer

        async def main():
            return await asyncio.gather(request("a"), request("b"))

        outer_a, outer_b = asyncio.run(main())
        # Two independent requests: distinct traces, both roots.
        assert outer_a.trace_id != outer_b.trace_id
        assert outer_a.parent_id == 0 and outer_b.parent_id == 0
        by_name = {r.name: r for r in tracer.records}
        assert by_name["inner-a"].parent_id == outer_a.span_id
        assert by_name["inner-b"].parent_id == outer_b.span_id

    def test_span_tree_orphans_surface_as_roots(self):
        from repro.obs import span_tree

        tracer = Tracer()
        tracer.enable()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        records = list(tracer.records)
        # Simulate a SIGKILLed parent process: drop the root record.
        orphaned = [r for r in records if r.name != "root"]
        tree = span_tree(orphaned)
        assert [n["name"] for n in tree] == ["child"]

    def test_merge_stitches_worker_spans_under_parent(self):
        """Worker span ids are random (not per-process counters), so a
        merged worker record parents under the dispatching span."""
        tracer = Tracer()
        tracer.enable()
        with tracer.span("portfolio") as disp:
            foreign = [{
                "name": "cdcl", "ts": 1.0, "wall": 0.5, "cpu": 0.4,
                "span_id": 123456789, "parent_id": disp.span_id,
                "pid": 99999, "attrs": {}, "trace_id": disp.trace_id,
            }]
            tracer.merge(foreign)
        from repro.obs import span_tree

        tree = span_tree(list(tracer.records))
        (root,) = tree
        assert root["name"] == "portfolio"
        assert [c["name"] for c in root["children"]] == ["cdcl"]


# ----- metrics ---------------------------------------------------------------


class TestMetrics:
    def test_disabled_mutators_are_noops(self):
        registry = MetricsRegistry()
        registry.counter_inc("repro_cdcl_decisions_total")
        registry.gauge_set("repro_cache_hit_ratio", 0.5)
        registry.observe("repro_span_seconds", 0.1)
        snap = registry.snapshot()
        assert snap == {"counters": [], "gauges": [], "histograms": []}

    def test_merge_semantics(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for reg in (a, b):
            reg.enable()
            reg.counter_inc("repro_cdcl_conflicts_total", 10, proc="worker")
            reg.gauge_set("depth", 3)
            reg.observe("repro_span_seconds", 0.01, span="cdcl")
        b.gauge_set("depth", 7)
        a.merge(b.snapshot())
        # Counters add, gauges last-write-wins, histograms merge.
        assert a.counter_value("repro_cdcl_conflicts_total",
                               proc="worker") == 20
        assert a.gauge_value("depth") == 7
        (hist,) = a.snapshot()["histograms"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.02)

    def test_snapshot_is_json_round_trippable(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter_inc("repro_vcs_total", backend="dafny", status="ok")
        registry.observe("repro_span_seconds", 2.5, span="vc")
        snap = json.loads(json.dumps(registry.snapshot()))
        fresh = MetricsRegistry()
        fresh.enable()
        fresh.merge(snap)
        assert fresh.counter_value("repro_vcs_total", backend="dafny",
                                   status="ok") == 1

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter_inc("repro_cdcl_decisions_total", 42, proc="main")
        registry.gauge_set("repro_cache_hit_ratio", 0.75)
        registry.observe("repro_span_seconds", 0.002, span="parse")
        text = registry.to_prometheus()
        assert "# TYPE repro_cdcl_decisions_total counter" in text
        assert 'repro_cdcl_decisions_total{proc="main"} 42' in text
        assert "# TYPE repro_cache_hit_ratio gauge" in text
        assert "repro_cache_hit_ratio 0.75" in text
        assert "# TYPE repro_span_seconds histogram" in text
        assert 'repro_span_seconds_bucket{span="parse",le="+Inf"} 1' in text
        assert 'repro_span_seconds_count{span="parse"} 1' in text

    def test_prometheus_help_precedes_type_for_every_family(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter_inc("repro_cdcl_decisions_total", 3)
        registry.gauge_set("repro_serve_queue_depth", 2)
        registry.observe("repro_serve_request_seconds", 0.01)
        text = registry.to_prometheus()
        families = set()
        for i, line in enumerate(text.splitlines()):
            if line.startswith("# TYPE "):
                name = line.split()[2]
                families.add(name)
                # The curated docstring (not the fallback) and the
                # HELP-before-TYPE ordering, for every family.
                prev = text.splitlines()[i - 1]
                assert prev.startswith(f"# HELP {name} "), prev
                assert prev != f"# HELP {name}"
        assert families == {
            "repro_cdcl_decisions_total",
            "repro_serve_queue_depth",
            "repro_serve_request_seconds",
        }
        # Serve-family names carry curated HELP text, not the fallback.
        assert "# HELP repro_serve_queue_depth repro serve queue depth." \
            not in text

    def test_prometheus_escapes_labels_and_help(self):
        from repro.obs.metrics import register_help

        registry = MetricsRegistry()
        registry.enable()
        register_help("weird_total", 'line1\nline2 with \\ backslash')
        registry.counter_inc(
            "weird_total", tenant='he said "hi"\n\\end')
        text = registry.to_prometheus()
        assert "# HELP weird_total line1\\nline2 with \\\\ backslash" in text
        assert 'tenant="he said \\"hi\\"\\n\\\\end"' in text
        # The exposition stays line-oriented: no raw newline leaked
        # into the middle of a series line.
        for line in text.splitlines():
            assert line.startswith(("#", "weird_total"))


# ----- per-solve vs lifetime CDCL stats (satellite fix) ----------------------


class TestPerSolveStats:
    def test_last_stats_is_the_per_call_delta(self):
        solver = CDCLSolver(3)
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        assert solver.solve(assumptions=[1]) is SatResult.SAT
        first = solver.last_stats.propagations
        first_lifetime = solver.stats.propagations
        assert first_lifetime == first
        assert solver.solve(assumptions=[-1]) is SatResult.SAT
        # Lifetime accumulates; last_stats covers only the second call.
        assert solver.stats.propagations >= first_lifetime
        assert (solver.last_stats.propagations
                == solver.stats.propagations - first)
        assert solver.last_stats.decisions <= solver.stats.decisions


# ----- Chrome trace export ---------------------------------------------------


def _analyze_with_telemetry(**kwargs):
    # cache=False keeps these assertions meaningful under the CI engine
    # leg (REPRO_CACHE_DIR set): a cache hit would skip the CDCL solve.
    return repro.analyze(
        EXAMPLE.read_text(), steps=3, consts={"N": 2}, telemetry=True,
        config=EncodeConfig(buffer_capacity=4, arrivals_per_step=2),
        cache=False, **kwargs,
    )


class TestChromeTrace:
    def test_trace_schema_and_ordering(self, tmp_path):
        outcome = _analyze_with_telemetry()
        snap = outcome.telemetry
        assert isinstance(snap, TelemetrySnapshot)
        # The trace covers the pipeline: >= 6 distinct phases.
        phases = snap.phase_names()
        assert len(phases & {"analyze", "parse", "typecheck", "symexec",
                             "interval-inference", "tseitin", "bitblast",
                             "check", "cdcl", "portfolio-rung", "vc"}) >= 6

        path = tmp_path / "trace.json"
        snap.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())  # valid JSON round-trip
        all_events = doc["traceEvents"]
        assert all_events and doc["displayTimeUnit"] == "ms"
        meta = [e for e in all_events if e["ph"] == "M"]
        events = [e for e in all_events if e["ph"] != "M"]
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ts", "dur", "pid", "args"}
            assert event["dur"] >= 0
        ts = [event["ts"] for event in events]
        assert ts == sorted(ts)  # monotonically ordered

        # Perfetto metadata: every pid is labelled (process + thread
        # name), and this process is the named "repro main".
        pids = {e["pid"] for e in events}
        for pid in pids:
            kinds = {m["name"] for m in meta if m["pid"] == pid}
            assert kinds == {"process_name", "thread_name"}
        main_labels = [m["args"]["name"] for m in meta
                       if m["pid"] == os.getpid()]
        assert main_labels and all(
            label == f"repro main (pid {os.getpid()})"
            for label in main_labels
        )

        # `repro stats` reconstructs phase names from the artifact.
        rebuilt = snapshot_from_chrome_trace(str(path))
        assert rebuilt.phase_names() == phases

    def test_telemetry_off_by_default_and_state_restored(self):
        outcome = repro.analyze(
            EXAMPLE.read_text(), steps=2, consts={"N": 2})
        assert outcome.telemetry is None
        assert not TRACER.enabled and not METRICS.enabled
        _analyze_with_telemetry()
        # telemetry=True must not leave the singletons enabled.
        assert not TRACER.enabled and not METRICS.enabled

    def test_prometheus_export_carries_cdcl_and_vc_series(self):
        outcome = _analyze_with_telemetry()
        text = outcome.telemetry.to_prometheus()
        assert "repro_cdcl_decisions_total" in text
        assert "repro_cdcl_conflicts_total" in text
        assert "repro_cdcl_propagations_total" in text
        assert "repro_vcs_total" in text
        assert "repro_cache_hit_ratio" in text
        # Derived gauges get HELP/TYPE too (they are synthesized at
        # export time, not recorded by the pipeline).
        assert "# HELP repro_cache_hit_ratio " in text
        assert "# TYPE repro_cache_hit_ratio gauge" in text


# ----- cross-process aggregation (REPRO_JOBS=2) ------------------------------


class TestCrossProcessMerge:
    def test_worker_metrics_merge_into_parent(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        outcome = _analyze_with_telemetry()
        snap = outcome.telemetry
        workers = [c for c in snap.metrics["counters"]
                   if c["labels"].get("proc") == "worker"]
        assert any(c["name"] == "repro_cdcl_decisions_total"
                   for c in workers)
        assert any(c["name"] == "repro_parallel_tasks_total"
                   for c in workers)
        # Worker spans merged in, attributed to their producing pid.
        assert any(s["pid"] != os.getpid() for s in snap.spans)
        text = snap.to_prometheus()
        assert 'proc="worker"' in text


# ----- near-free when disabled -----------------------------------------------


def _total_work(view):
    deq = view.deq_p("ibs[0]") + view.deq_p("ibs[1]")
    enq = view.enq_p("ibs[0]") + view.enq_p("ibs[1]")
    return mk_le(deq, enq)


class TestDisabledOverhead:
    def test_guard_cost_under_two_percent_of_smallest_ablation_case(self):
        """bench_ablation_sat's smallest case, with telemetry off, must
        dominate the cost of every no-op guard it could possibly hit."""
        assert not TRACER.enabled and not METRICS.enabled
        dafny = DafnyBackend(
            fq_buggy(2),
            config=EncodeConfig(buffer_capacity=5, arrivals_per_step=2),
        )
        t0 = time.perf_counter()
        report = dafny.verify_monolithic(
            3, queries=[("total_work", _total_work)])
        workload = time.perf_counter() - t0
        assert report.ok

        # A generous over-estimate of the guard sites that run hits:
        # the instrumentation spans phases / VCs / solver calls (tens to
        # hundreds of sites), never unit-propagation events.
        n_ops = 20_000
        t0 = time.perf_counter()
        for _ in range(n_ops):
            TRACER.span("hot-path-probe")
            METRICS.counter_inc("repro_probe_total")
        guards = time.perf_counter() - t0
        assert guards < 0.02 * workload, (
            f"{n_ops} disabled guard calls cost {guards * 1e3:.1f}ms vs"
            f" workload {workload * 1e3:.0f}ms"
        )
