"""Tests for the model-checking back end (BMC, k-induction, CHC)."""

from repro.backends.mc import MCStatus, ModelChecker, to_chc
from repro.compiler.symexec import EncodeConfig
from repro.lang.checker import check_program
from repro.lang.parser import parse_program
from repro.netmodels.schedulers import strict_priority
from repro.smt.terms import mk_and, mk_int, mk_le, mk_lt

CONFIG = EncodeConfig(buffer_capacity=3, arrivals_per_step=1)


def conservation(view):
    return mk_and(*[
        (view.deq_p(label) + view.backlog_p(label)).eq(view.enq_p(label))
        for label in view.buffer_labels()
    ])


def bounded_backlog(view):
    # Backlog can never exceed the buffer capacity (3 here).
    return mk_and(*[
        mk_le(view.backlog_p(label), mk_int(3))
        for label in view.buffer_labels()
    ])


def false_property(view):
    return mk_lt(view.backlog_p("ob"), mk_int(1))


class TestBMC:
    def test_safe_within_bound(self):
        mc = ModelChecker(strict_priority(2), config=CONFIG)
        result = mc.bmc(conservation, k=3)
        assert result.status is MCStatus.SAFE_BOUNDED
        assert result.ok
        assert result.solver_calls == 4

    def test_violation_found_with_step(self):
        mc = ModelChecker(strict_priority(2), config=CONFIG)
        result = mc.bmc(false_property, k=3)
        assert result.status is MCStatus.VIOLATED
        assert result.violation_step is not None
        assert result.violation_step >= 1  # ob is empty initially
        assert not result.ok

    def test_violation_at_initial_state(self):
        mc = ModelChecker(strict_priority(2), config=CONFIG)
        # "ob is non-empty" is already false at step 0... invert:
        result = mc.bmc(lambda v: mk_lt(mk_int(0), v.enq_p("ob")), k=1)
        assert result.status is MCStatus.VIOLATED
        assert result.violation_step == 0


class TestKInduction:
    def test_proves_conservation_unboundedly(self):
        mc = ModelChecker(strict_priority(2), config=CONFIG)
        result = mc.k_induction(conservation, k=1)
        assert result.status is MCStatus.PROVED

    def test_proves_bounded_backlog(self):
        mc = ModelChecker(strict_priority(2), config=CONFIG)
        result = mc.k_induction(bounded_backlog, k=1)
        assert result.status is MCStatus.PROVED

    def test_false_property_caught_in_base(self):
        mc = ModelChecker(strict_priority(2), config=CONFIG)
        result = mc.k_induction(false_property, k=1)
        assert result.status is MCStatus.VIOLATED

    def test_increasing_k(self):
        mc = ModelChecker(strict_priority(2), config=CONFIG)
        result = mc.prove_with_increasing_k(conservation, max_k=2)
        assert result.status is MCStatus.PROVED


class TestCHCExport:
    def test_chc_structure(self):
        text = to_chc(strict_priority(2), conservation, config=CONFIG)
        assert text.startswith("(set-logic HORN)")
        assert "(declare-fun Inv" in text
        assert text.count("(assert") == 3  # init, trans, property
        assert text.rstrip().endswith("(check-sat)")

    def test_chc_sorts_match_state(self):
        src = """\
        p(in buffer ib, out buffer ob){
          global bool flag; global int count;
          flag = !flag;
          count = count + 1;
          move-p(ib, ob, 1);
        }
        """
        checked = check_program(parse_program(src))
        text = to_chc(checked, lambda v: mk_le(mk_int(0), v.global_("count")),
                      config=CONFIG)
        header = [l for l in text.splitlines() if "declare-fun" in l][0]
        assert "Bool" in header and "Int" in header
