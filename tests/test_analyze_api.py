"""The unified result vocabulary and the ``repro.analyze()`` facade.

Covers the api_redesign satellite: one frozen ``AnalysisOutcome`` per
analysis, exit codes derived from ``Verdict`` in exactly one place,
``.outcome()`` conversion on every back-end result type, and the
normalized constructor signatures (with their deprecated legacy
spellings).
"""

import warnings

import pytest

import repro
from repro import AnalysisOutcome, Verdict
from repro.analysis.result import BUDGET_REASONS, EXIT_ERROR, verdict_for_unknown
from repro.backends.dafny import DafnyBackend
from repro.backends.fperf import FPerfBackend
from repro.backends.houdini import HoudiniSynthesizer
from repro.backends.mc import MCStatus, ModelChecker
from repro.backends.network import NetworkBackend
from repro.backends.smt_backend import SmtBackend, Status
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import fq_fixed, round_robin, strict_priority
from repro.runtime.budget import Budget, ExhaustionReason, ResourceReport
from repro.smt.terms import mk_and, mk_int, mk_le

CONFIG = EncodeConfig(buffer_capacity=4, arrivals_per_step=2)


def conservation(view):
    return mk_and(*[
        (view.deq_p(label) + view.backlog_p(label)).eq(view.enq_p(label))
        for label in view.buffer_labels()
    ])


# ----- Verdict / AnalysisOutcome ---------------------------------------------


class TestVerdict:
    def test_exit_codes_are_the_cli_contract(self):
        assert Verdict.PROVED.exit_code == 0
        assert Verdict.VIOLATED.exit_code == 1
        assert Verdict.UNDECIDED.exit_code == 2
        assert Verdict.EXHAUSTED.exit_code == 3
        assert EXIT_ERROR == 4

    def test_cli_reuses_verdict_exit_codes(self):
        from repro import cli

        assert cli.EXIT_PROVED == Verdict.PROVED.exit_code
        assert cli.EXIT_VIOLATED == Verdict.VIOLATED.exit_code
        assert cli.EXIT_UNKNOWN == Verdict.UNDECIDED.exit_code
        assert cli.EXIT_BUDGET == Verdict.EXHAUSTED.exit_code

    def test_verdict_is_not_a_boolean(self):
        with pytest.raises(TypeError):
            bool(Verdict.PROVED)
        with pytest.raises(TypeError):
            if Verdict.VIOLATED:  # pragma: no cover - must raise
                pass

    def test_verdict_for_unknown_classifies_reports(self):
        assert verdict_for_unknown(None) is Verdict.UNDECIDED
        for reason in BUDGET_REASONS:
            report = ResourceReport(reason=reason, message="spent")
            assert verdict_for_unknown(report) is Verdict.EXHAUSTED
        for reason in (ExhaustionReason.INJECTED, ExhaustionReason.FAULT):
            injected = ResourceReport(reason=reason, message="chaos")
            assert verdict_for_unknown(injected) is Verdict.UNDECIDED

    def test_outcome_is_frozen(self):
        outcome = AnalysisOutcome(verdict=Verdict.PROVED)
        with pytest.raises(Exception):
            outcome.verdict = Verdict.VIOLATED
        assert outcome.ok and outcome.exit_code == 0
        assert "proved" in outcome.describe()


# ----- .outcome() on every back-end result type ------------------------------


class TestOutcomeConversions:
    def test_outcome_stats_use_unified_schema(self):
        """outcome.stats carries the flat schema from repro.smt.stats —
        every SatStats counter and every SolverStats scalar, under the
        same names the metrics families use."""
        from repro.smt.stats import SatStats, SolverStats

        backend = SmtBackend(strict_priority(2), steps=3, config=CONFIG)
        found = backend.find_trace(
            mk_le(mk_int(1), backend.deq_count("ibs[0]")))
        stats = found.outcome().stats
        for key in SatStats().as_dict():
            assert key in stats, key
        for key in ("encode_seconds", "solve_seconds", "cnf_vars",
                    "cnf_clauses", "attempts", "cache_hit"):
            assert key in stats, key
        assert set(SolverStats().as_dict()) <= set(stats)

    def test_smt_verification_result(self):
        backend = SmtBackend(strict_priority(2), steps=3, config=CONFIG)
        found = backend.find_trace(
            mk_le(mk_int(1), backend.deq_count("ibs[0]")))
        outcome = found.outcome()
        assert outcome.verdict is Verdict.PROVED
        assert outcome.witness is found.counterexample
        assert outcome.stats["horizon"] == 3
        absent = backend.find_trace(
            mk_le(mk_int(100), backend.deq_count("ibs[0]")))
        assert absent.outcome().verdict is Verdict.VIOLATED

    def test_smt_exhausted_result(self):
        backend = SmtBackend(
            strict_priority(2), steps=3, config=CONFIG,
            budget=Budget(max_solver_calls=0),
        )
        result = backend.find_trace(
            mk_le(mk_int(1), backend.deq_count("ibs[0]")))
        assert result.status is Status.UNKNOWN
        outcome = result.outcome()
        assert outcome.verdict is Verdict.EXHAUSTED
        assert outcome.exit_code == 3
        assert outcome.report is not None

    def test_dafny_report(self):
        backend = DafnyBackend(fq_fixed(2), config=CONFIG)
        report = backend.verify_monolithic(
            3, queries=[("conservation", conservation)])
        assert report.outcome().verdict is Verdict.PROVED

    def test_mc_result(self):
        mc = ModelChecker(round_robin(2), config=CONFIG)
        bmc = mc.bmc(conservation, k=3)
        assert bmc.status is not MCStatus.VIOLATED
        assert bmc.outcome().verdict is Verdict.PROVED
        kind = mc.k_induction(conservation, k=1)
        assert kind.outcome().verdict is Verdict.PROVED

    def test_houdini_result(self):
        houdini = HoudiniSynthesizer(strict_priority(2), config=CONFIG)
        result = houdini.synthesize()
        outcome = result.outcome()
        assert isinstance(outcome, AnalysisOutcome)
        assert outcome.verdict in (Verdict.PROVED, Verdict.VIOLATED)

    def test_fperf_synthesis_result(self):
        fperf = FPerfBackend(round_robin(2), steps=3, config=CONFIG)
        target = mk_le(mk_int(1), fperf.backend.deq_count("ibs[0]"))
        synth = fperf.synthesize_by_generalization(target)
        outcome = synth.outcome()
        assert outcome.verdict is Verdict.PROVED
        assert outcome.witness is synth.workload


# ----- the analyze() facade --------------------------------------------------


class TestAnalyzeFacade:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            repro.analyze(strict_priority(2), backend="z3")

    def test_smt_find_trace_with_callable_query(self):
        outcome = repro.analyze(
            strict_priority(2),
            lambda bk: mk_le(mk_int(1), bk.deq_count("ibs[0]")),
            steps=3, config=CONFIG,
        )
        assert outcome.verdict is Verdict.PROVED
        assert outcome.witness is not None

    def test_smt_prove(self):
        outcome = repro.analyze(
            strict_priority(2),
            lambda bk: mk_le(mk_int(0), bk.deq_count("ibs[0]")),
            steps=3, config=CONFIG, prove=True,
        )
        assert outcome.verdict is Verdict.PROVED

    def test_accepts_raw_source(self):
        source = """\
fifo(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
}
"""
        outcome = repro.analyze(
            source, lambda bk: mk_le(mk_int(1), bk.deq_count("ib")),
            steps=3, config=CONFIG,
        )
        assert outcome.verdict is Verdict.PROVED

    def test_dafny_and_mc_backends(self):
        for backend in ("dafny", "mc"):
            outcome = repro.analyze(
                round_robin(2), conservation, backend=backend,
                steps=3, config=CONFIG,
            )
            assert outcome.verdict is Verdict.PROVED, backend

    def test_mc_requires_query(self):
        with pytest.raises(ValueError, match="requires a property"):
            repro.analyze(round_robin(2), backend="mc", config=CONFIG)

    def test_fperf_requires_query(self):
        with pytest.raises(ValueError, match="requires a query"):
            repro.analyze(round_robin(2), backend="fperf", config=CONFIG)

    def test_houdini_backend(self):
        outcome = repro.analyze(
            strict_priority(2), backend="houdini", steps=3, config=CONFIG,
        )
        assert outcome.verdict in (Verdict.PROVED, Verdict.VIOLATED)

    def test_budget_exhaustion_maps_to_exit_3(self):
        outcome = repro.analyze(
            strict_priority(2),
            lambda bk: mk_le(mk_int(1), bk.deq_count("ibs[0]")),
            steps=3, config=CONFIG, budget=Budget(max_solver_calls=0),
        )
        assert outcome.verdict is Verdict.EXHAUSTED
        assert outcome.exit_code == 3

    def test_engine_knobs_reach_the_solver(self):
        from repro.engine import ResultCache

        cache = ResultCache()
        query = lambda bk: mk_le(mk_int(1), bk.deq_count("ibs[0]"))
        first = repro.analyze(strict_priority(2), query, steps=3,
                              config=CONFIG, jobs=2, cache=cache)
        second = repro.analyze(strict_priority(2), query, steps=3,
                               config=CONFIG, jobs=2, cache=cache)
        assert first.verdict is second.verdict is Verdict.PROVED
        assert cache.stats.hits >= 1
        assert second.stats["cache_hit"]

    def test_exported_from_package_root(self):
        assert repro.analyze is not None
        assert repro.Verdict is Verdict
        assert repro.AnalysisOutcome is AnalysisOutcome


# ----- normalized constructors + legacy shims --------------------------------


class TestConstructorShims:
    """Legacy ``checked=``/``horizon=`` spellings: still accepted for
    one release, but every use now emits a ``DeprecationWarning``."""

    def test_smt_legacy_keywords_still_work(self):
        program = strict_priority(2)
        with pytest.deprecated_call():
            legacy = SmtBackend(checked=program, horizon=3, config=CONFIG)
        modern = SmtBackend(program, 3, config=CONFIG)
        assert legacy.horizon == modern.horizon == 3
        with pytest.deprecated_call():
            assert legacy.checked is program
        assert legacy.program is program

    def test_modern_spelling_is_warning_free(self):
        program = strict_priority(2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            backend = SmtBackend(program, steps=3, config=CONFIG)
        assert backend.program is program

    def test_smt_conflicting_spellings_raise(self):
        program = strict_priority(2)
        with pytest.raises(TypeError):
            SmtBackend(program, 3, checked=program)
        with pytest.raises(TypeError):
            SmtBackend(program, 3, horizon=4)

    def test_dafny_legacy_checked_keyword(self):
        program = fq_fixed(2)
        with pytest.deprecated_call():
            legacy = DafnyBackend(checked=program, config=CONFIG)
        assert legacy.program is program
        with pytest.raises(TypeError):
            DafnyBackend(program, checked=program)

    def test_fperf_legacy_keywords(self):
        program = round_robin(2)
        with pytest.deprecated_call():
            legacy = FPerfBackend(checked=program, horizon=3, config=CONFIG)
        modern = FPerfBackend(program, 3, config=CONFIG)
        assert legacy.horizon == modern.horizon == 3

    def test_network_legacy_horizon_keyword(self):
        program = strict_priority(2)
        with pytest.deprecated_call():
            NetworkBackend({"n": program}, (), horizon=2,
                           default_config=CONFIG)

    def test_backends_require_a_program(self):
        with pytest.raises(TypeError):
            SmtBackend(steps=3)
        with pytest.raises(TypeError):
            DafnyBackend()
