"""Unit tests for the CNF container and DIMACS I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.cnf import CNF, check_assignment


class TestCNF:
    def test_new_var(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_add_clause_dedup(self):
        cnf = CNF(num_vars=2)
        cnf.add_clause([1, 1, 2])
        assert cnf.clauses == [[1, 2]]

    def test_tautology_dropped(self):
        cnf = CNF(num_vars=1)
        cnf.add_clause([1, -1])
        assert len(cnf) == 0

    def test_zero_literal_rejected(self):
        cnf = CNF(num_vars=1)
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_unallocated_var_rejected(self):
        cnf = CNF(num_vars=1)
        with pytest.raises(ValueError):
            cnf.add_clause([2])

    def test_iter_and_len(self):
        cnf = CNF(num_vars=2)
        cnf.add_clauses([[1], [-2, 1]])
        assert len(cnf) == 2
        assert list(cnf) == [[1], [-2, 1]]


class TestDimacs:
    def test_round_trip(self):
        cnf = CNF(num_vars=3)
        cnf.add_clauses([[1, -2], [3], [-1, 2, -3]])
        text = cnf.to_dimacs()
        parsed = CNF.from_dimacs(text)
        assert parsed.num_vars == 3
        assert parsed.clauses == cnf.clauses

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 1\n1 -2 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.num_vars == 2
        assert cnf.clauses == [[1, -2]]

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("p dnf 1 1\n1 0\n")

    def test_multiline_clause(self):
        cnf = CNF.from_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert cnf.clauses == [[1, 2, 3]]


class TestCheckAssignment:
    def test_satisfied(self):
        cnf = CNF(num_vars=2)
        cnf.add_clauses([[1, 2], [-1, 2]])
        assert check_assignment(cnf, [False, False, True])

    def test_unsatisfied(self):
        cnf = CNF(num_vars=2)
        cnf.add_clauses([[1], [2]])
        assert not check_assignment(cnf, [False, True, False])

    def test_short_assignment_rejected(self):
        cnf = CNF(num_vars=3)
        with pytest.raises(ValueError):
            check_assignment(cnf, [False, True])


@given(st.lists(
    st.lists(st.integers(min_value=-5, max_value=5).filter(lambda v: v != 0),
             min_size=1, max_size=4),
    min_size=0, max_size=10,
))
@settings(max_examples=50, deadline=None)
def test_dimacs_round_trip_random(clauses):
    cnf = CNF(num_vars=5)
    for clause in clauses:
        cnf.add_clause(clause)
    parsed = CNF.from_dimacs(cnf.to_dimacs())
    assert parsed.clauses == cnf.clauses
