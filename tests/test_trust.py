"""Trust-layer tests: DRAT proof checking, unsat cores, certified
answers, and the chaos hooks that attack all three.

The contract under test: a certified run (``certify=True`` /
``REPRO_CERTIFY=1``) never reports UNSAT/VERIFIED unless the
independent checker in :mod:`repro.trust.drat` accepts a proof derived
from the solver's own run — and a corrupted proof, a corrupted cache
entry or a crashed portfolio worker degrades the answer (or heals the
pool) instead of producing a wrong or missing verdict.
"""

import pytest

from repro.analysis.facade import analyze
from repro.analysis.result import EXIT_CERTIFICATION, Verdict
from repro.backends.smt_backend import SmtBackend, Status
from repro.compiler.symexec import EncodeConfig
from repro.engine.cache import ResultCache
from repro.engine.parallel import PortfolioPool
from repro.netmodels.schedulers import fq_buggy, round_robin, strict_priority
from repro.runtime.budget import ExhaustionReason
from repro.runtime.chaos import inject_faults
from repro.smt.cnf import CNF
from repro.smt.sat.cdcl import CDCLSolver, SatResult
from repro.smt.solver import CheckResult, SmtSolver
from repro.smt.terms import (
    mk_bool_var,
    mk_int,
    mk_le,
    mk_not,
    mk_or,
)
from repro.trust import Certificate, DratChecker, DratError, ProofLog, check_drat

N, T = 2, 4
CONFIG = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)

SCHEDULERS = {
    "prio": strict_priority,
    "rr": round_robin,
    "fq": fq_buggy,
}


def pigeonhole(n: int) -> CNF:
    """PHP(n, n-1): n pigeons, n-1 holes — UNSAT, needs real search."""
    cnf = CNF()

    def var(p: int, h: int) -> int:
        return (p - 1) * (n - 1) + h

    cnf.num_vars = n * (n - 1)
    for p in range(1, n + 1):
        cnf.add_clause([var(p, h) for h in range(1, n)])
    for h in range(1, n):
        for p1 in range(1, n + 1):
            for p2 in range(p1 + 1, n + 1):
                cnf.add_clause([-var(p1, h), -var(p2, h)])
    return cnf


def solve_with_proof(cnf: CNF, assumptions=()):
    proof = ProofLog()
    solver = CDCLSolver(cnf.num_vars, proof=proof)
    solver.add_cnf(cnf)
    result = solver.solve(assumptions=list(assumptions))
    return solver, result, proof


# ----- the checker itself ----------------------------------------------------


class TestDratChecker:
    def test_accepts_real_cdcl_refutation(self):
        cnf = pigeonhole(4)
        _, result, proof = solve_with_proof(cnf)
        assert result is SatResult.UNSAT
        assert len(proof) > 0
        # Must not raise.
        check_drat(cnf.num_vars, cnf.clauses, list(proof.steps))

    def test_rejects_mutated_proof(self):
        cnf = pigeonhole(4)
        _, result, proof = solve_with_proof(cnf)
        assert result is SatResult.UNSAT
        # A unit over a fresh variable is never RUP: no clause mentions
        # it, so assuming its negation cannot conflict.  Prepend it so
        # it sits before the refutation point.
        steps = [("a", (cnf.num_vars + 1,))] + list(proof.steps)
        with pytest.raises(DratError):
            check_drat(cnf.num_vars, cnf.clauses, steps)

    def test_rejects_proof_against_mutated_cnf(self):
        cnf = pigeonhole(4)
        _, result, proof = solve_with_proof(cnf)
        assert result is SatResult.UNSAT
        # Dropping a pigeon's at-least-one clause makes the formula SAT;
        # a sound checker cannot accept any refutation of it.
        weakened = [c for c in cnf.clauses if len(c) != 3][1:]
        with pytest.raises(DratError):
            check_drat(cnf.num_vars, weakened, list(proof.steps))

    def test_rejects_truncated_proof(self):
        cnf = pigeonhole(5)
        _, result, proof = solve_with_proof(cnf)
        steps = [s for s in proof.steps if s[0] == "a"]
        assert result is SatResult.UNSAT and len(steps) > 1
        with pytest.raises(DratError):
            check_drat(cnf.num_vars, cnf.clauses, list(proof.steps)[:1])

    def test_deletions_replay(self):
        # PHP(8) needs enough conflicts to trigger clause-database
        # reductions, so the log contains real "d" steps; the checker
        # must still replay to refutation.
        cnf = pigeonhole(8)
        _, result, proof = solve_with_proof(cnf)
        assert result is SatResult.UNSAT
        assert any(step[0] == "d" for step in proof.steps)
        check_drat(cnf.num_vars, cnf.clauses, list(proof.steps))

    def test_unknown_deletion_is_ignored(self):
        # Deleting a clause that was never added only weakens the
        # clause set further — sound to ignore, and the proof must
        # still check.
        cnf = pigeonhole(4)
        _, result, proof = solve_with_proof(cnf)
        assert result is SatResult.UNSAT
        steps = [("d", (1, 2))] + list(proof.steps)
        check_drat(cnf.num_vars, cnf.clauses, steps)

    def test_core_certification(self):
        # UNSAT only under assumptions: the empty clause is never
        # derived; the final core must propagate to a conflict instead.
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([-a, -b])
        _, result, proof = solve_with_proof(cnf, assumptions=[a, b])
        assert result is SatResult.UNSAT
        check_drat(cnf.num_vars, cnf.clauses, list(proof.steps), core=(a, b))
        with pytest.raises(DratError):
            check_drat(cnf.num_vars, cnf.clauses, list(proof.steps), core=(a,))

    def test_certificate_wrapper_catches_errors(self):
        cnf = pigeonhole(4)
        _, _, proof = solve_with_proof(cnf)
        good = Certificate(
            num_vars=cnf.num_vars, clauses=list(cnf.clauses),
            steps=list(proof.steps),
        )
        assert good.verify() and good.verified and good.error is None
        bad = Certificate(
            num_vars=cnf.num_vars, clauses=list(cnf.clauses),
            steps=[("a", (cnf.num_vars + 1,))] + list(proof.steps),
        )
        assert not bad.verify() and not bad.verified
        assert bad.error


# ----- certified answers on the seed machines --------------------------------


class TestCertifiedAnswers:
    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_seed_machine_proofs_check(self, name):
        """Real pipeline proofs (3 seed machines) pass the checker."""
        checked = SCHEDULERS[name](N)
        backend = SmtBackend(checked, T, config=CONFIG, certify=True, jobs=1)
        deq0 = backend.deq_count("ibs[0]")
        deq1 = backend.deq_count("ibs[1]")
        impossible = mk_le(mk_int(T + 1), deq0 + deq1)
        result = backend.find_trace(impossible)
        # Certification happened (a rejected proof would be UNKNOWN).
        assert result.status is Status.UNSATISFIABLE

    def test_oneshot_certificate_exposed(self):
        solver = SmtSolver(certify=True)
        x = mk_bool_var("x")
        solver.add(x)
        solver.add(mk_not(x))
        assert solver.check() is CheckResult.UNSAT
        cert = solver.certificate
        assert cert is not None and cert.verified

    def test_incremental_certificate_across_calls(self):
        solver = SmtSolver(incremental=True, certify=True)
        a, b, c = mk_bool_var("a"), mk_bool_var("b"), mk_bool_var("c")
        solver.add(mk_or(mk_not(a), mk_not(b)))
        assert solver.check(a, b, c) is CheckResult.UNSAT
        assert solver.certificate is not None and solver.certificate.verified
        assert solver.check(a, c) is CheckResult.SAT
        assert solver.check(b, a) is CheckResult.UNSAT
        assert solver.certificate is not None and solver.certificate.verified

    def test_sat_answers_have_no_certificate(self):
        solver = SmtSolver(certify=True)
        solver.add(mk_bool_var("x"))
        assert solver.check() is CheckResult.SAT
        assert solver.certificate is None


# ----- unsat cores -----------------------------------------------------------


class TestUnsatCores:
    def test_core_is_minimal_on_hand_built_formula(self):
        a, b, c = mk_bool_var("a"), mk_bool_var("b"), mk_bool_var("c")
        solver = SmtSolver(incremental=True)
        solver.add(mk_or(mk_not(a), mk_not(b)))
        assert solver.check(a, b, c) is CheckResult.UNSAT
        core = solver.unsat_core()
        assert {t.name for t in core} == {"a", "b"}
        # Minimality: dropping any core member flips the verdict to SAT.
        remaining = {"a": a, "b": b, "c": c}
        for member in list(core):
            kept = [t for n, t in remaining.items() if n != member.name]
            assert solver.check(*kept) is CheckResult.SAT

    def test_core_requires_unsat_and_incremental(self):
        solver = SmtSolver(incremental=True)
        solver.add(mk_bool_var("x"))
        assert solver.check() is CheckResult.SAT
        with pytest.raises(RuntimeError):
            solver.unsat_core()
        oneshot = SmtSolver()
        x = mk_bool_var("x")
        oneshot.add(x)
        oneshot.add(mk_not(x))
        assert oneshot.check() is CheckResult.UNSAT
        with pytest.raises(RuntimeError):
            oneshot.unsat_core()

    def test_dafny_explain_vc(self):
        from repro.backends.dafny import DafnyBackend, StateView
        from repro.compiler.symexec import SymbolicMachine

        checked = strict_priority(N)
        backend = DafnyBackend(checked, config=CONFIG)
        machine = SymbolicMachine(checked, CONFIG)
        for _ in range(2):
            machine.exec_step()
        view = StateView(machine)
        labels = view.buffer_labels()
        # Total dequeues over 2 steps cannot exceed 2 * arrivals budget;
        # a generous bound is certainly verified.
        total = view.deq_p(labels[0])
        goal = mk_le(total, mk_int(100))
        core = backend.explain_vc(machine, goal)
        assert isinstance(core, list)
        # An unverified goal has no core.
        bad_goal = mk_le(total, mk_int(-1))
        with pytest.raises(ValueError):
            backend.explain_vc(machine, bad_goal)

    def test_mc_bound_core(self):
        from repro.backends.mc import ModelChecker

        checked = strict_priority(N)
        mc = ModelChecker(checked, config=CONFIG)
        core = mc.bound_core(
            lambda view: mk_le(view.deq_p("ibs[0]"), mk_int(100)), 2
        )
        assert isinstance(core, list)
        with pytest.raises(ValueError):
            mc.bound_core(
                lambda view: mk_le(view.deq_p("ibs[0]"), mk_int(-1)), 2
            )


# ----- chaos: proof corruption ----------------------------------------------


class TestProofCorruptionChaos:
    def _proved_analysis(self, certify, **chaos):
        checked = strict_priority(N)

        def possible_total(bk):
            # The negation ("more than T dequeues in T steps") is UNSAT
            # only after real CDCL search (~100 conflicts), so the
            # certificate genuinely depends on the logged proof — a
            # UP-refutable query would certify regardless of the log.
            total = bk.deq_count("ibs[0]") + bk.deq_count("ibs[1]")
            return mk_le(total, mk_int(T))

        if chaos:
            with inject_faults(**chaos) as monkey:
                outcome = analyze(
                    checked, possible_total, backend="smt", steps=T,
                    config=CONFIG, prove=True, certify=certify, jobs=1,
                )
            return outcome, monkey
        return analyze(
            checked, possible_total, backend="smt", steps=T,
            config=CONFIG, prove=True, certify=certify, jobs=1,
        ), None

    def test_corrupted_proof_downgrades_to_undecided(self):
        outcome, monkey = self._proved_analysis(
            True, seed=3, proof_corrupt_rate=1.0
        )
        assert monkey.log.proofs_corrupted >= 1
        assert outcome.verdict is Verdict.UNDECIDED
        assert outcome.report is not None
        assert outcome.report.reason is ExhaustionReason.CERTIFICATION_FAILED
        assert outcome.exit_code == EXIT_CERTIFICATION

    def test_same_run_without_corruption_is_proved(self):
        outcome, _ = self._proved_analysis(True)
        assert outcome.verdict is Verdict.PROVED
        assert outcome.exit_code == 0

    def test_corruption_without_certify_goes_unnoticed(self):
        # Without certify=True no proof is logged or checked, so the
        # corruption hook never fires — the baseline answer stands.
        outcome, monkey = self._proved_analysis(
            False, seed=3, proof_corrupt_rate=1.0
        )
        assert outcome.verdict is Verdict.PROVED
        assert monkey.log.proofs_corrupted == 0


# ----- chaos: worker crashes and the supervised pool -------------------------


class TestSupervisedPool:
    def test_crashed_worker_is_respawned_and_query_retried(self):
        cnf = pigeonhole(5)
        pool = PortfolioPool(jobs=2)
        try:
            baseline, _ = pool.solve_portfolio(cnf, [None])
            assert baseline.verdict is SatResult.UNSAT
            # Crash each slot's worker exactly once: the supervisor must
            # respawn and the retried query must reach the same verdict.
            result, _ = pool.solve_portfolio(
                cnf, [None, None], chaos=(1.0, 11, 1)
            )
            assert result.verdict is baseline.verdict
            assert pool.last_respawned >= 1
            assert pool.last_quarantined == 0
        finally:
            pool.close()

    def test_worker_death_holding_result_lock_is_recovered(self):
        # A worker that dies abruptly can die *while its queue feeder
        # thread holds the shared result pipe's write lock* (the feeder
        # takes it for every message; os._exit / OOM-kill can strike
        # between send_bytes and the release).  Every surviving
        # worker's answers then block behind the dead holder.  Simulate
        # the dead holder by seizing the lock from the parent: the
        # supervisor must notice the silence, rebuild the transport
        # (fresh queues, fresh workers), and still answer — not hang,
        # not quarantine the innocent query.
        cnf = pigeonhole(4)
        pool = PortfolioPool(jobs=2)
        try:
            baseline, _ = pool.solve_portfolio(cnf, [None])
            assert baseline.verdict is SatResult.UNSAT
            pool.hang_seconds = 1.0  # keep the stall window short
            pool._results._wlock.acquire()  # the "dead" lock holder
            result, _ = pool.solve_portfolio(cnf, [None])
            assert result.verdict is baseline.verdict
            assert pool.last_respawned >= 1
            assert pool.last_quarantined == 0
        finally:
            pool.close()

    def test_repeatedly_crashing_query_is_quarantined(self):
        cnf = pigeonhole(4)
        pool = PortfolioPool(jobs=2)
        try:
            result, _ = pool.solve_portfolio(
                cnf, [None, None], chaos=(1.0, 11, 99)
            )
            assert result.verdict is SatResult.UNKNOWN
            assert result.reason == "quarantined"
            assert pool.last_quarantined >= 1
        finally:
            pool.close()

    def test_pool_survives_quarantine_and_answers_next_query(self):
        cnf = pigeonhole(4)
        pool = PortfolioPool(jobs=2)
        try:
            quarantined, _ = pool.solve_portfolio(
                cnf, [None, None], chaos=(1.0, 5, 99)
            )
            assert quarantined.reason == "quarantined"
            healthy, _ = pool.solve_portfolio(cnf, [None, None])
            assert healthy.verdict is SatResult.UNSAT
        finally:
            pool.close()

    def test_certified_parallel_unsat_ships_checkable_proof(self):
        cnf = pigeonhole(5)
        pool = PortfolioPool(jobs=2)
        try:
            result, _ = pool.solve_portfolio(cnf, [None, None], certify=True)
            assert result.verdict is SatResult.UNSAT
            cert = Certificate(
                num_vars=cnf.num_vars, clauses=list(cnf.clauses),
                steps=list(result.proof or []),
                core=tuple(result.core or ()),
            )
            assert cert.verify(), cert.error
        finally:
            pool.close()


# ----- cache hardening -------------------------------------------------------


class TestCacheHardening:
    def _entry(self):
        from repro.engine.cache import CacheEntry

        return CacheEntry(verdict="unsat", cnf_vars=3, cnf_clauses=5)

    def test_roundtrip_with_checksum(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put("ab" * 32, self._entry())
        fresh = ResultCache(disk_dir=tmp_path)
        hit = fresh.get("ab" * 32)
        assert hit is not None and hit.verdict == "unsat"
        assert fresh.stats.corrupt_entries == 0

    def test_truncated_entry_is_a_miss_and_deleted(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        key = "cd" * 32
        cache.put(key, self._entry())
        path = cache._disk_path(key)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.corrupt_entries == 1
        assert not path.exists()

    def test_tampered_payload_fails_checksum(self, tmp_path):
        import json

        cache = ResultCache(disk_dir=tmp_path)
        key = "ef" * 32
        cache.put(key, self._entry())
        path = cache._disk_path(key)
        data = json.loads(path.read_text())
        data["verdict"] = "sat"  # flip the answer, keep the old checksum
        path.write_text(json.dumps(data))
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.corrupt_entries == 1
        assert not path.exists()

    def test_chaos_cache_corruption_degrades_to_miss(self, tmp_path):
        key = "09" * 32
        with inject_faults(seed=1, cache_corrupt_rate=1.0) as monkey:
            cache = ResultCache(disk_dir=tmp_path)
            cache.put(key, self._entry())
        assert monkey.log.cache_corrupted >= 1
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.corrupt_entries == 1
