"""Tests for analysis utilities: LoC accounting, workload generators,
trace replay tamper detection."""

import pytest

from repro.analysis.loc import (
    buffy_loc,
    python_loc,
    scheduler_agnostic_loc,
    table1_rows,
)
from repro.analysis.traces import replay
from repro.analysis.workloads import (
    onoff_workload,
    random_workload,
    uniform_workload,
)
from repro.backends.smt_backend import SmtBackend
from repro.buffers.packets import Packet
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import fq_buggy
from repro.smt.terms import mk_int, mk_le


class TestLoc:
    def test_buffy_loc_skips_comments_and_blanks(self):
        src = "a(in buffer b, out buffer o){\n// comment\n\n  x = 1; // t\n}\n"
        assert buffy_loc(src) == 3

    def test_python_loc_skips_docstrings_imports(self):
        src = '"""Doc."""\nimport os\n\nX = 1  # comment\n\n\ndef f():\n' \
              '    """Doc."""\n    return X\n'
        assert python_loc(src) == 3  # X = 1, def f():, return X

    def test_table1_shape(self):
        rows = table1_rows()
        names = [r.program for r in rows]
        assert names == ["Fair-Queue", "Round-Robin", "Strict-Priority"]
        # The paper's qualitative claims: every scheduler is much smaller
        # in Buffy; FQ has the largest absolute encoding; ratios exceed 3x.
        for row in rows:
            assert row.buffy_loc < row.fperf_loc
            assert row.ratio >= 3.0
        assert rows[0].fperf_loc == max(r.fperf_loc for r in rows)
        assert rows[2].fperf_loc == min(r.fperf_loc for r in rows)

    def test_buffy_counts_match_paper_scale(self):
        rows = {r.program: r for r in table1_rows()}
        # Paper: 18 / 10 / 7 — ours must be within a couple of lines.
        assert abs(rows["Fair-Queue"].buffy_loc - 18) <= 2
        assert abs(rows["Round-Robin"].buffy_loc - 10) <= 2
        assert abs(rows["Strict-Priority"].buffy_loc - 7) <= 2

    def test_agnostic_layer_counted_separately(self):
        assert scheduler_agnostic_loc() > 100


class TestWorkloadGenerators:
    def test_uniform(self):
        wl = uniform_workload(["ibs[0]", "ibs[1]"], horizon=3, per_step=2)
        assert len(wl) == 3
        assert all(len(step["ibs[0]"]) == 2 for step in wl)
        assert wl[0]["ibs[1]"][0].flow == 1

    def test_onoff_staggered(self):
        wl = onoff_workload(["a", "b"], horizon=4, burst=3, period=2)
        assert "a" in wl[0] and "b" not in wl[0]
        assert "b" in wl[1] and "a" not in wl[1]

    def test_random_deterministic(self):
        a = random_workload(["x"], horizon=5, max_per_step=3, seed=4)
        b = random_workload(["x"], horizon=5, max_per_step=3, seed=4)
        assert [len(s.get("x", [])) for s in a] == \
               [len(s.get("x", [])) for s in b]


class TestReplayTamperDetection:
    def test_tampered_trace_reports_mismatch(self):
        config = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)
        backend = SmtBackend(fq_buggy(2), steps=4, config=config)
        result = backend.find_trace(
            mk_le(mk_int(2), backend.deq_count("ibs[1]"))
        )
        trace = result.counterexample
        # Corrupt the workload: add packets the model never saw.
        trace.arrivals[0].setdefault("ibs[0]", []).extend(
            [Packet(flow=0)] * 3
        )
        report = replay(fq_buggy(2), trace, backend=backend)
        assert not report.consistent
        assert report.mismatches
