"""Tests for the resource-governance core (repro.runtime)."""

import pytest

from repro.runtime import (
    Budget,
    BudgetExhausted,
    EscalationPolicy,
    ExhaustionReason,
    ResourceReport,
)
from repro.smt.sat.cdcl import CDCLConfig


class FakeClock:
    """A controllable monotonic clock for deadline tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBudget:
    def test_unlimited_budget_never_exhausts(self):
        budget = Budget()
        budget.start()
        budget.charge_conflicts(10**6)
        budget.charge_learned(10**6)
        assert budget.exhausted() is None
        budget.checkpoint("anywhere")  # must not raise

    def test_deadline_only_ticks_after_start(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=1.0, clock=clock)
        clock.advance(100)
        assert budget.exhausted() is None  # not started: clock irrelevant
        budget.start()
        assert budget.exhausted() is None
        clock.advance(1.5)
        assert budget.exhausted() is ExhaustionReason.DEADLINE

    def test_start_is_idempotent(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=10.0, clock=clock)
        budget.start()
        clock.advance(5)
        budget.start()  # must not reset the wall clock
        assert budget.elapsed_seconds() == pytest.approx(5.0)
        assert budget.remaining_seconds() == pytest.approx(5.0)

    def test_conflict_cap(self):
        budget = Budget(max_conflicts=10)
        budget.charge_conflicts(9)
        assert budget.exhausted() is None
        budget.charge_conflicts(1)
        assert budget.exhausted() is ExhaustionReason.CONFLICTS

    def test_learned_clause_cap_is_memory(self):
        budget = Budget(max_learned_clauses=4)
        budget.charge_learned(4)
        assert budget.exhausted() is ExhaustionReason.MEMORY

    def test_solver_call_cap_allows_nth_call(self):
        budget = Budget(max_solver_calls=2)
        budget.charge_solver_call()
        budget.charge_solver_call()
        assert budget.exhausted() is None  # the Nth call may still run
        budget.charge_solver_call()
        assert budget.exhausted() is ExhaustionReason.SOLVER_CALLS

    def test_cancel_wins_over_everything(self):
        budget = Budget(max_conflicts=10)
        budget.cancel()
        assert budget.exhausted() is ExhaustionReason.CANCELLED

    def test_checkpoint_raises_with_report(self):
        budget = Budget(max_conflicts=1)
        budget.charge_conflicts(1)
        with pytest.raises(BudgetExhausted) as excinfo:
            budget.checkpoint("unit test")
        report = excinfo.value.report
        assert report.reason is ExhaustionReason.CONFLICTS
        assert report.message == "unit test"
        assert report.conflicts == 1
        assert report.max_conflicts == 1

    def test_report_snapshot_and_describe(self):
        clock = FakeClock()
        budget = Budget(deadline_seconds=2.0, max_conflicts=100, clock=clock)
        budget.start()
        clock.advance(2.5)
        budget.charge_conflicts(7)
        report = budget.report(ExhaustionReason.DEADLINE, "during test")
        text = report.describe()
        assert "resource budget exhausted: deadline" in text
        assert "during test" in text
        assert "conflicts: 7 of 100" in text
        assert "2.50s of 2s" in text

    def test_describe_unbounded_caps(self):
        report = ResourceReport(reason=ExhaustionReason.CANCELLED)
        text = report.describe()
        assert "of unbounded" in text
        assert "unbounded s" not in text and "unboundeds" not in text


class TestBudgetNesting:
    def test_slice_spend_propagates_to_parent(self):
        parent = Budget(max_conflicts=10)
        child = parent.slice(max_conflicts=100)
        child.charge_conflicts(10)
        assert child.exhausted() is ExhaustionReason.CONFLICTS  # via parent
        assert parent.exhausted() is ExhaustionReason.CONFLICTS

    def test_slice_deadline_clamped_to_parent_remaining(self):
        clock = FakeClock()
        parent = Budget(deadline_seconds=10.0, clock=clock)
        parent.start()
        clock.advance(8)
        child = parent.slice(deadline_seconds=5.0)
        assert child.deadline_seconds == pytest.approx(2.0)

    def test_parent_exhaustion_visible_in_child(self):
        parent = Budget(max_solver_calls=0)
        child = parent.slice()
        parent.charge_solver_call()
        assert child.exhausted() is ExhaustionReason.SOLVER_CALLS

    def test_started_parent_starts_child(self):
        parent = Budget().start()
        child = parent.slice()
        assert child.started


class TestEscalationPolicy:
    def test_ladder_length(self):
        policy = EscalationPolicy(max_attempts=3)
        assert len(policy.ladder(None)) == 2

    def test_ladder_varies_configs(self):
        base = CDCLConfig(max_conflicts=100)
        policy = EscalationPolicy(max_attempts=4, conflict_growth=2.0)
        rungs = policy.ladder(base)
        # Conflict caps must grow geometrically...
        assert [c.max_conflicts for c in rungs] == [200, 400, 800]
        # ...and each rung must differ from the base configuration.
        for rung in rungs:
            assert (
                rung.use_restarts != base.use_restarts
                or rung.var_decay != base.var_decay
                or rung.restart_base != base.restart_base
            )

    def test_ladder_without_base_config(self):
        policy = EscalationPolicy(max_attempts=2)
        (rung,) = policy.ladder(None)
        assert rung.max_conflicts is None  # no cap to grow
