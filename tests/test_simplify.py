"""Tests for the term simplification pass."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.simplify import simplify
from repro.smt.sorts import INT
from repro.smt.terms import (
    ONE,
    ZERO,
    dag_size,
    evaluate,
    free_vars,
    mk_and,
    mk_bool_to_int,
    mk_bool_var,
    mk_eq,
    mk_int,
    mk_int_var,
    mk_ite,
    mk_le,
    mk_lt,
    mk_not,
    mk_or,
    mk_sub,
)


class TestRules:
    def test_bool_to_int_comparison_collapses(self):
        c = mk_bool_var("c")
        term = mk_lt(ZERO, mk_bool_to_int(c))
        assert simplify(term) is c

    def test_bool_to_int_le_zero_is_negation(self):
        c = mk_bool_var("c")
        term = mk_le(mk_bool_to_int(c), ZERO)
        assert simplify(term) is mk_not(c)

    def test_nested_same_guard_then(self):
        c = mk_bool_var("c")
        a, b, d = mk_int_var("a"), mk_int_var("b"), mk_int_var("d")
        term = mk_ite(c, mk_ite(c, a, b), d)
        assert simplify(term) is mk_ite(c, a, d)

    def test_nested_same_guard_else(self):
        c = mk_bool_var("c")
        a, b, d = mk_int_var("a"), mk_int_var("b"), mk_int_var("d")
        term = mk_ite(c, a, mk_ite(c, b, d))
        assert simplify(term) is mk_ite(c, a, d)

    def test_constant_offset_shift(self):
        x = mk_int_var("x")
        term = mk_le(x + mk_int(2), mk_int(5))
        assert simplify(term) is mk_le(x, mk_int(3))

    def test_eq_offset_shift(self):
        x = mk_int_var("x")
        term = mk_eq(x + mk_int(4), mk_int(4))
        simplified = simplify(term)
        assert simplified is mk_eq(x, ZERO)

    def test_ite_comparison_with_const_branch(self):
        c = mk_bool_var("c")
        x = mk_int_var("x")
        # ite(c, x, 0) == 0  →  ite(c, x == 0, true)
        term = mk_eq(mk_ite(c, x, ZERO), ZERO)
        simplified = simplify(term)
        assert dag_size(simplified) <= dag_size(term)
        for cv in (False, True):
            for xv in range(-2, 3):
                env = {"c": cv, "x": xv}
                assert evaluate(term, env) == evaluate(simplified, env)

    def test_idempotent(self):
        c = mk_bool_var("c")
        term = mk_lt(ZERO, mk_bool_to_int(c) + mk_bool_to_int(mk_not(c)))
        once = simplify(term)
        assert simplify(once) is once


@st.composite
def small_formula(draw):
    x, y = mk_int_var("sx"), mk_int_var("sy")
    p = mk_bool_var("sp")

    def term(depth):
        if depth == 0:
            return draw(st.sampled_from(
                [x, y, ZERO, ONE, mk_int(draw(st.integers(-3, 3)))]
            ))
        kind = draw(st.sampled_from(["add", "sub", "ite", "b2i"]))
        if kind == "add":
            return term(depth - 1) + term(depth - 1)
        if kind == "sub":
            return mk_sub(term(depth - 1), term(depth - 1))
        if kind == "b2i":
            return mk_bool_to_int(boolean(depth - 1))
        return mk_ite(boolean(depth - 1), term(depth - 1), term(depth - 1))

    def boolean(depth):
        if depth == 0:
            return draw(st.sampled_from([p, mk_eq(ZERO, ZERO)]))
        kind = draw(st.sampled_from(["and", "or", "not", "lt", "le", "eq"]))
        if kind == "and":
            return mk_and(boolean(depth - 1), boolean(depth - 1))
        if kind == "or":
            return mk_or(boolean(depth - 1), boolean(depth - 1))
        if kind == "not":
            return mk_not(boolean(depth - 1))
        if kind == "lt":
            return mk_lt(term(depth - 1), term(depth - 1))
        if kind == "le":
            return mk_le(term(depth - 1), term(depth - 1))
        return mk_eq(term(depth - 1), term(depth - 1))

    return boolean(3)


@given(small_formula())
@settings(max_examples=120, deadline=None)
def test_simplify_preserves_semantics(formula):
    simplified = simplify(formula)
    for sx, sy in itertools.product(range(-3, 4), repeat=2):
        for sp in (False, True):
            env = {"sx": sx, "sy": sy, "sp": sp}
            assert evaluate(formula, env) == evaluate(simplified, env)


@given(small_formula())
@settings(max_examples=60, deadline=None)
def test_simplify_never_grows(formula):
    assert dag_size(simplify(formula)) <= dag_size(formula)


class TestOnCompiledFormulas:
    def test_shrinks_buffy_encodings(self):
        """The rules target guarded-execution patterns; measure on a real
        compiled formula."""
        from repro.backends.smt_backend import SmtBackend
        from repro.compiler.symexec import EncodeConfig
        from repro.netmodels.schedulers import fq_buggy
        from repro.smt.terms import mk_le as le

        backend = SmtBackend(
            fq_buggy(2), steps=3,
            config=EncodeConfig(buffer_capacity=4, arrivals_per_step=2),
        )
        query = le(mk_int(2), backend.deq_count("ibs[0]"))
        before = dag_size(query)
        after = dag_size(simplify(query))
        assert after <= before

    def test_solver_results_identical_with_and_without(self):
        from repro.smt.solver import CheckResult, SmtSolver

        x = mk_int_var("simp_x")
        c = mk_bool_var("simp_c")
        formula = mk_and(
            mk_lt(ZERO, mk_bool_to_int(c)),
            mk_eq(mk_ite(c, x + mk_int(2), ZERO), mk_int(5)),
        )
        answers = []
        for flag in (True, False):
            solver = SmtSolver(simplify_terms=flag)
            solver.set_bounds("simp_x", -8, 8)
            solver.add(formula)
            answers.append(solver.check())
            if answers[-1] is CheckResult.SAT:
                model = solver.model()
                assert model["simp_c"] is True
                assert model["simp_x"] == 3
        assert answers[0] == answers[1] == CheckResult.SAT
