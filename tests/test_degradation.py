"""Graceful degradation under resource budgets and injected faults.

The resource-governance contract, end to end: every back end, given a
budget that is too small or a solver that misbehaves, must return a
*structured partial result* (or a typed exception carrying one) — never
hang, never leak a raw exception, never fabricate an answer.
"""

import time

import pytest

from repro import Budget, BudgetExhausted, EncodeConfig
from repro.analysis.queries import starvation
from repro.backends import (
    DafnyBackend,
    FPerfBackend,
    HoudiniSynthesizer,
    MCStatus,
    ModelChecker,
    NetworkBackend,
    SmtBackend,
    Status,
    VCStatus,
)
from repro.netmodels.schedulers import fq_buggy
from repro.runtime import ExhaustionReason, ResourceReport, inject_faults
from repro.smt.sat.cdcl import CDCLConfig
from repro.smt.solver import CheckResult, SmtSolver
from repro.smt.terms import mk_int, mk_int_var, mk_le

CONFIG = EncodeConfig(buffer_capacity=4, arrivals_per_step=2)
HORIZON = 4


def _starve(backend):
    return starvation(backend, "ibs[0]")


def _bounded_backlog(view):
    return mk_le(view.backlog_p("ibs[0]"), mk_int(CONFIG.buffer_capacity))


class TestSolverUnknownContract:
    """Satellite: SmtSolver.check() UNKNOWN handling."""

    def _hard_solver(self, budget=None, sat_config=None, escalation=None):
        solver = SmtSolver(sat_config=sat_config, budget=budget,
                           escalation=escalation)
        xs = [mk_int_var(f"q{i}") for i in range(8)]
        for x in xs:
            solver.set_bounds(x.name, 0, 50)
        acc = xs[0]
        for x in xs[1:]:
            acc = acc * x
        solver.add(mk_le(mk_int(10**6), acc))
        return solver

    def test_model_raises_clear_error_after_unknown(self):
        solver = self._hard_solver(budget=Budget(max_conflicts=5))
        assert solver.check() is CheckResult.UNKNOWN
        with pytest.raises(RuntimeError) as excinfo:
            solver.model()
        msg = str(excinfo.value)
        assert "UNKNOWN" in msg
        assert "conflicts" in msg        # names the exhausted resource
        assert "stale" in msg

    def test_stats_recorded_for_exhausted_run(self):
        solver = self._hard_solver(budget=Budget(max_conflicts=5))
        solver.check()
        assert solver.stats.encode_seconds > 0
        assert solver.stats.cnf_clauses > 0
        assert solver.last_report.conflicts >= 5

    def test_budget_refuses_calls_beyond_cap(self):
        solver = SmtSolver(budget=Budget(max_solver_calls=1))
        solver.add(mk_le(mk_int(0), mk_int(1)))
        assert solver.check() is CheckResult.SAT      # the Nth call runs
        assert solver.check() is CheckResult.UNKNOWN  # call N+1 refused
        assert solver.last_report.reason is ExhaustionReason.SOLVER_CALLS
        assert "refused before encoding" in solver.last_report.message

    def test_escalation_retries_per_call_cap(self):
        from repro.runtime import EscalationPolicy

        solver = self._hard_solver(
            sat_config=CDCLConfig(max_conflicts=3),
            escalation=EscalationPolicy(max_attempts=3),
        )
        result = solver.check()
        # Whatever the final verdict, all rungs of the ladder must run
        # when every attempt exhausts its per-call cap.
        if result is CheckResult.UNKNOWN:
            assert solver.stats.attempts == 3
            assert solver.last_report.attempts == 3
        else:
            assert solver.stats.attempts >= 2


class TestBackendPartialResults:
    """Satellite: tiny budgets yield structured partial results."""

    def test_smt_backend_unknown_with_report(self):
        # Inprocessing is disabled so the instance genuinely needs
        # conflicts: variable elimination alone can crack this fixture
        # without ever charging the conflict budget.
        backend = SmtBackend(fq_buggy(2), HORIZON, config=CONFIG,
                             sat_config=CDCLConfig(use_inprocessing=False),
                             budget=Budget(max_conflicts=20))
        result = backend.find_trace(_starve(backend))
        assert result.status is Status.UNKNOWN
        assert not result.complete
        assert result.resource_report.reason is ExhaustionReason.CONFLICTS
        assert result.resource_report.conflicts >= 20

    def test_dafny_per_vc_isolation(self):
        backend = DafnyBackend(fq_buggy(2), config=CONFIG,
                               budget=Budget(max_conflicts=20))
        report = backend.verify_monolithic(
            3, queries=[("b0", _bounded_backlog),
                        ("b1", lambda v: mk_le(v.backlog_p("ibs[1]"),
                                               mk_int(CONFIG.buffer_capacity)))]
        )
        # Both VCs were attempted (no abort after the first UNKNOWN)...
        assert [vc.name for vc in report.vcs] == ["b0", "b1"]
        # ...and each undecided VC carries its own resource report.
        assert not report.complete
        for vc in report.unknown():
            assert vc.resource_report is not None

    def test_fperf_best_so_far(self):
        backend = FPerfBackend(fq_buggy(2), HORIZON, config=CONFIG,
                               budget=Budget(max_conflicts=15))
        result = backend.synthesize_by_generalization(
            starvation(backend.backend, "ibs[0]")
        )
        assert not result.complete
        assert result.resource_report is not None

    def test_mc_reports_safe_prefix(self):
        checker = ModelChecker(fq_buggy(2), config=CONFIG,
                               budget=Budget(max_conflicts=40))
        result = checker.bmc(_bounded_backlog, 4)
        assert result.status is MCStatus.UNKNOWN
        assert not result.complete
        assert result.resource_report is not None
        # The budget allowed at least the initial state to be checked.
        assert result.safe_until is not None and result.safe_until >= 0

    def test_houdini_partial_invariants_on_exception(self):
        synth = HoudiniSynthesizer(fq_buggy(2), config=CONFIG,
                                   budget=Budget(max_conflicts=10))
        with pytest.raises(BudgetExhausted) as excinfo:
            synth.synthesize()
        partial = excinfo.value.partial
        assert partial is not None
        assert not partial.complete
        assert partial.invariant            # surviving candidate subset
        assert partial.resource_report is not None

    def test_network_backend_unknown_with_report(self):
        backend = NetworkBackend({"fq": fq_buggy(2)}, [], 3,
                                 default_config=CONFIG,
                                 budget=Budget(max_conflicts=20))
        result = backend.find_trace(
            mk_le(mk_int(2), backend.backlog("fq", "ibs[0]"))
        )
        assert result.status is Status.UNKNOWN
        assert result.resource_report is not None

    def test_unroll_exhaustion_is_remembered_not_raised(self):
        budget = Budget(deadline_seconds=0.0)
        budget.start()  # deadline already passed when unrolling starts
        backend = SmtBackend(fq_buggy(2), HORIZON, config=CONFIG,
                             budget=budget)
        result = backend.check_assertions()
        assert result.status is Status.UNKNOWN
        assert result.resource_report.reason is ExhaustionReason.DEADLINE


class TestFaultInjectionAcceptance:
    """Acceptance: all six back ends survive injected faults with
    structured partial results and zero unhandled exceptions."""

    CHAOS = dict(seed=42, unknown_rate=0.4, fault_rate=0.4)

    def _run_all_backends(self):
        """Run each back end once; return its (structured) outcome."""
        outcomes = {}

        backend = SmtBackend(fq_buggy(2), 3, config=CONFIG)
        outcomes["smt"] = backend.find_trace(_starve(backend))

        dafny = DafnyBackend(fq_buggy(2), config=CONFIG)
        outcomes["dafny"] = dafny.verify_monolithic(
            2, queries=[("b0", _bounded_backlog)]
        )

        fperf = FPerfBackend(fq_buggy(2), 3, config=CONFIG)
        outcomes["fperf"] = fperf.synthesize_by_generalization(
            starvation(fperf.backend, "ibs[0]")
        )

        checker = ModelChecker(fq_buggy(2), config=CONFIG)
        outcomes["mc"] = checker.bmc(_bounded_backlog, 2)

        try:
            synth = HoudiniSynthesizer(fq_buggy(2), config=CONFIG)
            outcomes["houdini"] = synth.synthesize(max_iterations=8)
        except BudgetExhausted as exc:   # typed, carrying the partial
            outcomes["houdini"] = exc.partial

        net = NetworkBackend({"fq": fq_buggy(2)}, [], 2,
                             default_config=CONFIG)
        outcomes["network"] = net.find_trace(
            mk_le(mk_int(1), net.backlog("fq", "ibs[0]"))
        )
        return outcomes

    def test_all_backends_survive_chaos(self):
        # Any exception other than the typed BudgetExhausted handled
        # above fails this test — that is the acceptance criterion.
        with inject_faults(**self.CHAOS) as monkey:
            outcomes = self._run_all_backends()
        assert len(outcomes) == 6
        assert monkey.log.unknowns + monkey.log.faults > 0
        for name, outcome in outcomes.items():
            assert outcome is not None, name

    def test_chaos_schedule_replays_exactly(self):
        with inject_faults(**self.CHAOS) as first:
            self._run_all_backends()
        with inject_faults(**self.CHAOS) as second:
            self._run_all_backends()
        assert first.log.schedule == second.log.schedule

    def test_all_unknown_still_structured(self):
        with inject_faults(seed=7, unknown_rate=1.0):
            outcomes = self._run_all_backends()
        assert outcomes["smt"].status is Status.UNKNOWN
        assert all(vc.status is VCStatus.UNKNOWN
                   for vc in outcomes["dafny"].vcs)
        assert not outcomes["fperf"].complete
        assert outcomes["mc"].status is MCStatus.UNKNOWN
        assert not outcomes["houdini"].complete
        assert outcomes["network"].status is Status.UNKNOWN


@pytest.mark.slow
class TestDeadlineAcceptance:
    """Acceptance: a wall-clock budget on the Figure-6 T=6 monolithic
    encoding halts within 1.5x the deadline with a populated report."""

    def test_fig6_t6_monolithic_halts_within_deadline(self):
        deadline = 2.0
        config = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)
        backend = DafnyBackend(fq_buggy(2), config=config,
                               budget=Budget(deadline_seconds=deadline))

        def total_work(view):
            deq = view.deq_p("ibs[0]") + view.deq_p("ibs[1]")
            enq = view.enq_p("ibs[0]") + view.enq_p("ibs[1]")
            return mk_le(deq, enq)

        t0 = time.monotonic()
        report = backend.verify_monolithic(
            6, queries=[("total_work", total_work)]
        )
        elapsed = time.monotonic() - t0

        assert elapsed <= 1.5 * deadline, (
            f"run took {elapsed:.2f}s against a {deadline}s deadline"
        )
        assert not report.complete
        (vc,) = report.unknown()
        inner = vc.resource_report
        assert isinstance(inner, ResourceReport)
        assert inner.reason is ExhaustionReason.DEADLINE
        assert inner.elapsed_seconds >= deadline
        assert inner.deadline_seconds == deadline
        assert "deadline" in inner.describe()
