"""Tests for the CCAC case-study models (§6.2)."""

import pytest

from repro.backends.network import NetworkBackend
from repro.backends.smt_backend import Status
from repro.buffers.packets import Packet
from repro.netmodels.ccac.models import (
    aimd_program,
    ccac_network,
    ccac_symbolic_network,
    delay_program,
    path_program,
)
from repro.smt.terms import mk_int, mk_le


class TestPrograms:
    def test_programs_check(self):
        assert aimd_program().name == "aimd"
        assert path_program().name == "path"
        assert delay_program().name == "delay"

    def test_wiring_shape(self):
        from repro.netmodels.ccac.models import _wiring

        programs, connections = _wiring(delay_steps=2)
        assert set(programs) == {"aimd", "path", "delay0", "delay1"}
        # aimd -> path -> delay0 -> delay1 -> aimd
        assert len(connections) == 4

    def test_invalid_delay(self):
        with pytest.raises(ValueError):
            ccac_network(delay_steps=0)


class TestConcreteBehaviour:
    def test_window_growth_with_ack_clocking(self):
        net = ccac_network(delay_steps=1)
        for _ in range(10):
            net.step({"aimd": {"cin0": [Packet(flow=0)] * 4}})
        aimd = net.interpreter("aimd")
        assert aimd.globals["cwnd"] > 2  # additive increase happened
        assert net.interpreter("path").globals["m_served"] > 0

    def test_no_data_no_service(self):
        net = ccac_network(delay_steps=1)
        for _ in range(5):
            net.step()
        assert net.interpreter("path").globals["m_served"] == 0

    def test_multiplicative_decrease_on_silence(self):
        # Drive the AIMD program standalone: grow the window with manual
        # acks, then go silent for RTO steps and observe the halving.
        from repro.lang.interp import Interpreter

        interp = Interpreter(aimd_program())
        for _ in range(6):
            interp.run_step({
                "cin0": [Packet(flow=0)] * 4,
                "cin1": [Packet(flow=0)] * 2,  # acks keep arriving
            })
        before = interp.globals["cwnd"]
        assert before > 2
        assert interp.globals["inflight"] > 0
        for _ in range(4):  # RTO = 3 silent RTTs triggers the decrease
            interp.run_step({})
        assert interp.globals["cwnd"] <= max(1, before // 2)

    def test_token_bucket_envelope(self):
        net = ccac_network(delay_steps=1)
        for _ in range(10):
            net.step({"aimd": {"cin0": [Packet(flow=0)] * 4}})
        path = net.interpreter("path")
        tick = path.globals["tick"]
        trefill = path.globals["trefill"]
        assert trefill <= 1 * tick + 2  # RATE*t + BURST
        assert trefill >= 1 * tick - 2


@pytest.mark.slow
class TestSymbolicLoss:
    def test_loss_reachable_with_small_buffer(self):
        programs, connections, configs = ccac_symbolic_network(
            delay_steps=1, path_capacity=3
        )
        backend = NetworkBackend(
            programs, connections, steps=6, configs=configs
        )
        lost = mk_le(mk_int(1), backend.drop_count("path", "pin0"))
        result = backend.find_trace(lost)
        assert result.status is Status.SATISFIED

    def test_no_loss_with_tiny_window_cap(self):
        # With cwnd clamped to the buffer size, AIMD cannot overflow it:
        # at most CWND_MAX packets are ever in flight toward the buffer.
        from repro.compiler.composition import Connection
        from repro.lang.checker import check_program
        from repro.lang.parser import parse_program
        from repro.netmodels.ccac.models import AIMD_SRC, _wiring

        small_window = AIMD_SRC.replace(
            "const int CWND_MAX = 8;", "const int CWND_MAX = 2;"
        ).replace("const int IW = 2;", "const int IW = 1;")
        programs, connections, configs = ccac_symbolic_network(
            delay_steps=1, path_capacity=6
        )
        programs["aimd"] = check_program(parse_program(small_window))
        backend = NetworkBackend(
            programs, connections, steps=4, configs=configs
        )
        lost = mk_le(mk_int(1), backend.drop_count("path", "pin0"))
        result = backend.find_trace(lost)
        assert result.status is Status.UNSATISFIABLE
