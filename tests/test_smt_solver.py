"""Tests for intervals, bit-blasting and the SMT solver facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.bitblast import BitBlaster, decode_twos_complement
from repro.smt.intervals import BoundsEnv, Interval, infer_intervals, signed_bits
from repro.smt.sat.cdcl import CDCLConfig
from repro.smt.solver import CheckResult, SmtSolver, is_satisfiable, prove
from repro.smt.terms import (
    evaluate,
    mk_and,
    mk_bool_var,
    mk_eq,
    mk_implies,
    mk_int,
    mk_int_var,
    mk_ite,
    mk_le,
    mk_lt,
    mk_mul,
    mk_neg,
    mk_not,
    mk_or,
    mk_sub,
    mk_xor,
)


class TestIntervals:
    def test_signed_bits(self):
        assert signed_bits(0) == 1
        assert signed_bits(-1) == 1
        assert signed_bits(1) == 2
        assert signed_bits(127) == 8
        assert signed_bits(-128) == 8
        assert signed_bits(128) == 9

    def test_interval_arithmetic(self):
        a = Interval(-2, 3)
        b = Interval(1, 4)
        assert (a + b) == Interval(-1, 7)
        assert (a - b) == Interval(-6, 2)
        assert (-a) == Interval(-3, 2)
        assert (a * b) == Interval(-8, 12)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_join(self):
        assert Interval(0, 2).join(Interval(5, 7)) == Interval(0, 7)

    def test_infer(self):
        env = BoundsEnv({"x": Interval(0, 10), "y": Interval(-5, 5)})
        x, y = mk_int_var("x"), mk_int_var("y")
        f = mk_lt(x + y, mk_int(100))
        ivs = infer_intervals(f, env)
        assert ivs[id(x + y)] == Interval(-5, 15)

    def test_ite_interval_is_join(self):
        env = BoundsEnv({"x": Interval(0, 3)})
        x = mk_int_var("x")
        p = mk_bool_var("p")
        t = mk_ite(p, x, mk_int(10))
        ivs = infer_intervals(mk_lt(t, mk_int(99)), env)
        assert ivs[id(t)] == Interval(0, 10)


class TestDecoding:
    def test_twos_complement(self):
        assert decode_twos_complement([False]) == 0
        assert decode_twos_complement([True]) == -1
        assert decode_twos_complement([True, False]) == 1
        assert decode_twos_complement([False, True]) == -2
        assert decode_twos_complement([True, True, False]) == 3


class TestSolverFacade:
    def test_basic_sat_and_model(self):
        solver = SmtSolver()
        x, y = mk_int_var("x"), mk_int_var("y")
        solver.set_bounds(x, 0, 10)
        solver.set_bounds(y, -5, 5)
        solver.add(mk_mul(x, x) <= mk_int(16), x >= mk_int(3), (x + y).eq(2))
        assert solver.check() is CheckResult.SAT
        model = solver.model()
        assert model[x] * model[x] <= 16
        assert model[x] >= 3
        assert model[x] + model[y] == 2
        assert 0 <= model[x] <= 10 and -5 <= model[y] <= 5

    def test_unsat(self):
        solver = SmtSolver()
        x = mk_int_var("ux")
        solver.set_bounds(x, 0, 3)
        solver.add(mk_lt(mk_int(5), x))
        assert solver.check() is CheckResult.UNSAT

    def test_model_unavailable_after_unsat(self):
        solver = SmtSolver()
        solver.add(mk_bool_var("p"), mk_not(mk_bool_var("p")))
        assert solver.check() is CheckResult.UNSAT
        with pytest.raises(RuntimeError):
            solver.model()

    def test_push_pop(self):
        solver = SmtSolver()
        x = mk_int_var("ppx")
        solver.set_bounds(x, 0, 5)
        solver.add(mk_le(mk_int(2), x))
        solver.push()
        solver.add(mk_lt(x, mk_int(2)))
        assert solver.check() is CheckResult.UNSAT
        solver.pop()
        assert solver.check() is CheckResult.SAT

    def test_pop_without_push(self):
        with pytest.raises(RuntimeError):
            SmtSolver().pop()

    def test_assumptions_do_not_persist(self):
        solver = SmtSolver()
        p = mk_bool_var("ap")
        solver.add(mk_or(p, mk_not(p)))
        assert solver.check(mk_not(p)) is CheckResult.SAT
        assert solver.check(p) is CheckResult.SAT

    def test_non_bool_assert_rejected(self):
        with pytest.raises(TypeError):
            SmtSolver().add(mk_int(3))

    def test_check_result_not_boolean(self):
        with pytest.raises(TypeError):
            bool(CheckResult.SAT)

    def test_unknown_on_budget(self):
        # Pigeonhole-flavoured integer problem with a tiny conflict budget.
        solver = SmtSolver(sat_config=CDCLConfig(max_conflicts=1))
        xs = [mk_int_var(f"php{i}") for i in range(6)]
        for x in xs:
            solver.set_bounds(x, 0, 4)
        for i in range(6):
            for j in range(i + 1, 6):
                solver.add(mk_not(mk_eq(xs[i], xs[j])))
        assert solver.check() is CheckResult.UNKNOWN

    def test_prove_helpers(self):
        a, b = mk_int_var("pa"), mk_int_var("pb")
        bounds = {"pa": (-20, 20), "pb": (-20, 20)}
        assert prove(mk_eq(a + b, b + a), bounds)
        assert not prove(mk_eq(mk_sub(a, b), mk_sub(b, a)), bounds)
        assert is_satisfiable(mk_eq(mk_sub(a, b), mk_sub(b, a)), bounds)

    def test_range_constraints_respected(self):
        solver = SmtSolver()
        x = mk_int_var("rangex")
        solver.set_bounds(x, 3, 5)  # range narrower than its bit width
        solver.add(mk_le(mk_int(0), x))  # trivial
        assert solver.check() is CheckResult.SAT
        assert 3 <= solver.model()[x] <= 5
        solver.add(mk_lt(x, mk_int(3)))
        assert solver.check() is CheckResult.UNSAT


class TestBitBlastOps:
    """Exhaustive small-domain checks of each operation's encoding."""

    def _solve_for(self, formula, bounds):
        solver = SmtSolver()
        for name, (lo, hi) in bounds.items():
            solver.set_bounds(name, lo, hi)
        solver.add(formula)
        return solver

    @pytest.mark.parametrize("op_name", ["add", "sub", "mul", "neg"])
    def test_arith_exhaustive(self, op_name):
        x, y, z = mk_int_var("bx"), mk_int_var("by"), mk_int_var("bz")
        ops = {
            "add": (x + y, lambda a, b: a + b),
            "sub": (mk_sub(x, y), lambda a, b: a - b),
            "mul": (mk_mul(x, y), lambda a, b: a * b),
            "neg": (mk_neg(x), lambda a, b: -a),
        }
        term, fn = ops[op_name]
        bounds = {"bx": (-3, 3), "by": (-3, 3), "bz": (-20, 20)}
        for a in range(-3, 4):
            for b in range(-3, 4):
                solver = self._solve_for(
                    mk_and(x.eq(a), y.eq(b), z.eq(term)), bounds
                )
                assert solver.check() is CheckResult.SAT
                assert solver.model()[z] == fn(a, b)

    def test_comparisons_exhaustive(self):
        x, y = mk_int_var("cx"), mk_int_var("cy")
        bounds = {"cx": (-3, 3), "cy": (-3, 3)}
        for a in range(-3, 4):
            for b in range(-3, 4):
                for term, expected in (
                    (mk_lt(x, y), a < b),
                    (mk_le(x, y), a <= b),
                    (mk_eq(x, y), a == b),
                ):
                    formula = mk_and(x.eq(a), y.eq(b), term)
                    assert is_satisfiable(formula, bounds) == expected

    def test_xor_and_implies(self):
        p, q = mk_bool_var("xp"), mk_bool_var("xq")
        # xor(p, q) & (p => q) & p is unsat
        assert not is_satisfiable(mk_and(mk_xor(p, q), mk_implies(p, q), p, q))
        assert is_satisfiable(mk_and(mk_xor(p, q), mk_implies(p, q), mk_not(p)))


@st.composite
def bounded_formula(draw):
    """A random formula over x,y in [-4,4] and p, with its evaluator."""
    x, y = mk_int_var("hx"), mk_int_var("hy")
    p = mk_bool_var("hp")

    def term(depth):
        if depth == 0:
            return draw(st.sampled_from(
                [x, y, mk_int(draw(st.integers(-3, 3)))]
            ))
        kind = draw(st.sampled_from(["add", "sub", "mul", "ite", "neg"]))
        if kind == "add":
            return term(depth - 1) + term(depth - 1)
        if kind == "sub":
            return mk_sub(term(depth - 1), term(depth - 1))
        if kind == "mul":
            return mk_mul(term(depth - 1), term(depth - 1))
        if kind == "neg":
            return mk_neg(term(depth - 1))
        return mk_ite(boolean(depth - 1), term(depth - 1), term(depth - 1))

    def boolean(depth):
        if depth == 0:
            return draw(st.sampled_from([p, mk_int(0).eq(mk_int(0))]))
        kind = draw(st.sampled_from(["and", "or", "not", "lt", "le", "eq"]))
        if kind == "and":
            return mk_and(boolean(depth - 1), boolean(depth - 1))
        if kind == "or":
            return mk_or(boolean(depth - 1), boolean(depth - 1))
        if kind == "not":
            return mk_not(boolean(depth - 1))
        if kind == "lt":
            return mk_lt(term(depth - 1), term(depth - 1))
        if kind == "le":
            return mk_le(term(depth - 1), term(depth - 1))
        return mk_eq(term(depth - 1), term(depth - 1))

    return boolean(2)


@given(bounded_formula())
@settings(max_examples=60, deadline=None)
def test_pipeline_agrees_with_brute_force(formula):
    """Property: sat answers match exhaustive evaluation on small domains."""
    expected = any(
        evaluate(formula, {"hx": a, "hy": b, "hp": pv}) is True
        for a in range(-4, 5)
        for b in range(-4, 5)
        for pv in (False, True)
    )
    got = is_satisfiable(formula, bounds={"hx": (-4, 4), "hy": (-4, 4)})
    assert got == expected
