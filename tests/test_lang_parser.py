"""Tests for the Buffy lexer and parser."""

import pytest

from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    Backlog,
    BinOp,
    BinOpKind,
    Decl,
    FilterExpr,
    For,
    Havoc,
    If,
    Index,
    IntLit,
    ListEmpty,
    ListHas,
    Move,
    PopFront,
    PushBack,
    Seq,
    UnOp,
    Var,
    VarKind,
)
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse_expr, parse_program
from repro.lang.types import ArrayType, BufferType, IntType, ListType


class TestLexer:
    def test_hyphenated_builtins(self):
        tokens = tokenize("backlog-p(b) move-b(x, y, 1)")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "BUILTIN"
        assert tokens[0].text == "backlog-p"
        assert tokens[4].text == "move-b"

    def test_underscore_builtin_aliases(self):
        tokens = tokenize("backlog_p(b)")
        assert tokens[0].text == "backlog-p"  # canonicalized

    def test_keywords(self):
        tokens = tokenize("if else for global monitor havoc")
        assert [t.kind for t in tokens[:-1]] == [
            "IF", "ELSE", "FOR", "GLOBAL", "MONITOR", "HAVOC",
        ]

    def test_comments_and_positions(self):
        tokens = tokenize("x = 1; // comment\ny = 2;")
        y_tok = [t for t in tokens if t.text == "y"][0]
        assert y_tok.pos == (2, 1)

    def test_multichar_operators(self):
        tokens = tokenize("a ==> b |> c .. == != <= >=")
        kinds = [t.kind for t in tokens]
        assert "IMPLIES" in kinds and "PIPEGT" in kinds and "DOTDOT" in kinds

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("x = #;")


class TestExprParsing:
    def test_precedence_cmp_binds_tighter_than_and(self):
        # Figure 4 relies on this: backlog > 0 & !l.has(i)
        expr = parse_expr("backlog-p(b) > 0 & !l.has(i)")
        assert isinstance(expr, BinOp) and expr.kind is BinOpKind.AND
        assert isinstance(expr.left, BinOp) and expr.left.kind is BinOpKind.GT

    def test_arith_precedence(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.kind is BinOpKind.ADD
        assert expr.right.kind is BinOpKind.MUL

    def test_implies_right_assoc(self):
        expr = parse_expr("a ==> b ==> c")
        assert expr.kind is BinOpKind.IMPLIES
        assert isinstance(expr.left, Var)

    def test_unary(self):
        expr = parse_expr("-x + !p & q")
        assert expr.kind is BinOpKind.AND

    def test_filter(self):
        expr = parse_expr("backlog-p(b |> flow == 2)")
        assert isinstance(expr, Backlog)
        assert isinstance(expr.buffer, FilterExpr)
        assert expr.buffer.fieldname == "flow"

    def test_list_methods(self):
        assert isinstance(parse_expr("l.has(3)"), ListHas)
        assert isinstance(parse_expr("l.empty()"), ListEmpty)

    def test_indexing(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, Index)

    def test_parenthesized(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.kind is BinOpKind.MUL

    def test_statement_marker_rejected_as_expr(self):
        with pytest.raises(ParseError):
            parse_expr("l.push_back(3)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expr("1 + 2 )")


PROGRAM = """\
sched(in buffer[N] ibs, out buffer ob){
  const int Q = 2;
  global list nq;
  monitor int served;
  local int head;
  for (i in 0..N) do {
    if (backlog-p(ibs[i]) > 0 & !nq.has(i)) { nq.push_back(i); }
  }
  head = nq.pop_front();
  if (head != 0 - 1) {
    move-p(ibs[head], ob, 1);
    served = served + 1;
  }
  assert(served <= Q * 2);
  assume(backlog-p(ob) <= 8);
  havoc head in 0..N;
}
"""


class TestProgramParsing:
    def test_structure(self):
        program = parse_program(PROGRAM, consts={"N": 3})
        assert program.name == "sched"
        assert [p.name for p in program.params] == ["ibs", "ob"]
        assert isinstance(program.params[0].type, ArrayType)
        assert program.params[0].type.size == 3
        decl_names = [d.name for d in program.decls]
        assert "nq" in decl_names and "served" in decl_names
        assert program.constants()["Q"] == 2
        assert program.constants()["N"] == 3

    def test_command_kinds_present(self):
        program = parse_program(PROGRAM, consts={"N": 3})
        kinds = {type(c).__name__ for c in _walk(program.body)}
        assert {"For", "If", "PushBack", "PopFront", "Move",
                "Assert", "Assume", "Havoc", "Assign"} <= kinds

    def test_supplied_const_overrides(self):
        program = parse_program("p(in buffer b, out buffer o){const int K = 1;"
                                " move-p(b, o, K);}", consts={"K": 5})
        assert program.constants()["K"] == 5

    def test_unknown_size_const(self):
        with pytest.raises(ParseError):
            parse_program("p(in buffer[M] b, out buffer o){ move-p(b[0], o, 1);}")

    def test_procedure_with_contract(self):
        src = """\
        p(in buffer ib, out buffer ob){
          def send(int n)
            requires n >= 0;
            ensures backlog-p(ob) >= 0;
          { move-p(ib, ob, n); }
          send(1);
        }
        """
        program = parse_program(src)
        assert len(program.procedures) == 1
        proc = program.procedures[0]
        assert proc.name == "send"
        assert len(proc.requires) == 1 and len(proc.ensures) == 1

    def test_loop_invariant_syntax(self):
        src = """\
        p(in buffer ib, out buffer ob){
          local int x;
          x = 0;
          for (i in 0..4) invariant x >= 0; do { x = x + 1; }
          move-p(ib, ob, x);
        }
        """
        program = parse_program(src)
        fors = [c for c in _walk(program.body) if isinstance(c, For)]
        assert len(fors[0].invariants) == 1

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("p(in buffer b, out buffer o){ x = 1 }")

    def test_in_out_inference(self):
        # Figure 4 style: no qualifiers; direction inferred from moves.
        src = "fq(buffer a, buffer b){ move-p(a, b, 1); }"
        program = parse_program(src)
        from repro.lang.checker import check_program

        checked = check_program(program)
        kinds = {p.name: p.kind for p in checked.program.params}
        assert kinds["a"] is VarKind.PARAM_IN
        assert kinds["b"] is VarKind.PARAM_OUT


def _walk(cmd):
    from repro.lang.ast import walk_commands

    return list(walk_commands(cmd))


class TestPrettyRoundTrip:
    @pytest.mark.parametrize("source_name", [
        "FQ_BUGGY_SRC", "FQ_FIXED_SRC", "RR_SRC", "PRIO_SRC",
    ])
    def test_schedulers_round_trip(self, source_name):
        from repro.lang.pretty import pretty_program
        from repro.netmodels import schedulers

        source = getattr(schedulers, source_name)
        first = parse_program(source, consts={"N": 2})
        printed = pretty_program(first)
        second = parse_program(printed)
        assert first.name == second.name
        assert _strip(first.body) == _strip(second.body)

    def test_ccac_round_trip(self):
        from repro.lang.pretty import pretty_program
        from repro.netmodels.ccac.models import AIMD_SRC, PATH_SRC

        for src in (AIMD_SRC, PATH_SRC):
            first = parse_program(src)
            second = parse_program(pretty_program(first))
            assert _strip(first.body) == _strip(second.body)


def _strip(cmd):
    """Structural fingerprint ignoring positions and Seq nesting."""
    from repro.lang import ast as A

    if isinstance(cmd, A.Seq):
        parts = []
        for c in cmd.commands:
            inner = _strip(c)
            if isinstance(c, A.Seq):
                parts.extend(inner[1])
            else:
                parts.append(inner)
        if len(parts) == 1:
            return parts[0]
        return ("seq", parts)
    if isinstance(cmd, A.If):
        return ("if", _sexpr(cmd.cond), _strip(cmd.then), _strip(cmd.els))
    if isinstance(cmd, A.For):
        return ("for", cmd.var, _sexpr(cmd.lo), _sexpr(cmd.hi),
                _strip(cmd.body))
    if isinstance(cmd, A.Skip):
        return ("skip",)
    return (type(cmd).__name__,) + tuple(
        _sexpr(e) for e in A.exprs_of(cmd)
    )


def _sexpr(expr):
    from repro.lang import ast as A

    if isinstance(expr, A.IntLit):
        return ("int", expr.value)
    if isinstance(expr, A.BoolLit):
        return ("bool", expr.value)
    if isinstance(expr, A.Var):
        return ("var", expr.name)
    if isinstance(expr, A.Index):
        return ("idx", _sexpr(expr.base), _sexpr(expr.index))
    if isinstance(expr, A.BinOp):
        return ("bin", expr.kind.value, _sexpr(expr.left), _sexpr(expr.right))
    if isinstance(expr, A.UnOp):
        return ("un", expr.kind.value, _sexpr(expr.operand))
    if isinstance(expr, A.Backlog):
        return ("backlog", expr.in_bytes, _sexpr(expr.buffer))
    if isinstance(expr, A.FilterExpr):
        return ("filter", expr.fieldname, _sexpr(expr.buffer),
                _sexpr(expr.value))
    if isinstance(expr, A.ListHas):
        return ("has", _sexpr(expr.target), _sexpr(expr.item))
    if isinstance(expr, A.ListEmpty):
        return ("empty", _sexpr(expr.target))
    if isinstance(expr, A.ListLen):
        return ("len", _sexpr(expr.target))
    raise AssertionError(f"unexpected {expr!r}")
