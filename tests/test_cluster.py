"""Replicated serve: ring, registry, lease, router failover, handoff.

The centerpiece is the kill-one-of-two-replicas acceptance test (slow,
subprocess): a router in front of two real ``repro serve`` replicas,
one SIGKILLed mid-burst — every admitted job must still reach a
definitive verdict (failover or journal handoff), no idempotency key
may be solved twice, and handed-off jobs keep their original trace id
end-to-end.
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.analysis.result import AnalysisOutcome, Verdict
from repro.client import ServiceClient, ServiceUnavailable
from repro.obs import TRACER, make_traceparent
from repro.persist.batch import BatchRunner, LeaseHeld, SpoolLease, job_id_for
from repro.runtime.chaos import inject_faults
from repro.serve import (
    AnalysisService,
    ClusterService,
    HashRing,
    Replica,
    ReplicaRegistry,
    ReplicaState,
    ReproServer,
    RouterConfig,
    ServeConfig,
    parse_replica,
)
from repro.top import run_top

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SRC = """
prog(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
  assert(backlog-p(ob) >= 0);
}
"""


def variant(i: int) -> str:
    """Distinct job specs: job ids hash the source text."""
    return SRC + f"// cluster variant {i}\n"


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def proved_fn(rec, budget, escalation):
    return AnalysisOutcome(verdict=Verdict.PROVED)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _repro(args, *, extra_env=None, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=timeout,
        start_new_session=True,
    )


def _wait_for(predicate, *, timeout=30.0, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    pytest.fail(f"timed out waiting for {message}")


# ----- consistent-hash ring -------------------------------------------------


def test_ring_spreads_keys_and_orders_preference():
    ring = HashRing(["a", "b", "c", "d"])
    keys = [f"key-{i}" for i in range(2000)]
    owners = {k: ring.primary(k) for k in keys}
    counts = {n: 0 for n in ring.nodes()}
    for owner in owners.values():
        counts[owner] += 1
    # Near-uniform split: no node starves or hoards.
    for node, count in counts.items():
        assert 0.10 <= count / len(keys) <= 0.45, (node, counts)
    # preference() is the failover walk: starts at the owner, visits
    # every node exactly once.
    pref = ring.preference(keys[0])
    assert pref[0] == owners[keys[0]]
    assert sorted(pref) == ring.nodes()


def test_ring_stability_on_join_and_leave():
    """The satellite property: a membership change moves ≤ ~1/N keys,
    and every moved key lands on (or leaves) the changed node."""
    ring = HashRing(["a", "b", "c", "d"])
    keys = [f"key-{i}" for i in range(2000)]
    before = {k: ring.primary(k) for k in keys}

    ring.add("e")
    after_join = {k: ring.primary(k) for k in keys}
    moved = [k for k in keys if after_join[k] != before[k]]
    # Expected fraction 1/5; allow slack for vnode variance.
    assert 0.05 <= len(moved) / len(keys) <= 0.32, len(moved)
    assert all(after_join[k] == "e" for k in moved)

    # Leaving restores the exact prior placement (determinism), and
    # only the leaver's keys move.
    ring.remove("e")
    assert {k: ring.primary(k) for k in keys} == before
    ring.remove("a")
    after_leave = {k: ring.primary(k) for k in keys}
    for k in keys:
        if before[k] != "a":
            assert after_leave[k] == before[k]
        else:
            assert after_leave[k] != "a"


def test_parse_replica_specs():
    rep = parse_replica("127.0.0.1:9001")
    assert (rep.name, rep.host, rep.port) == ("127.0.0.1:9001",
                                              "127.0.0.1", 9001)
    assert rep.spool is None
    rep = parse_replica("10.0.0.2:8650=/var/spool/r1")
    assert rep.port == 8650 and str(rep.spool) == "/var/spool/r1"
    for junk in ("nohost", "host:", ":123", "host:port"):
        with pytest.raises(ValueError):
            parse_replica(junk)


# ----- replica registry (ejection / re-admission) ---------------------------


def _one_replica_registry(clock, probe_fn, **kwargs):
    replica = Replica(name="r:1", host="r", port=1)
    registry = ReplicaRegistry(
        [replica], clock=clock, probe_fn=probe_fn, **kwargs)
    return registry, replica


def test_registry_ejects_after_threshold_then_readmits():
    clock = FakeClock()
    health = {"ok": True}

    def probe(replica):
        if not health["ok"]:
            raise ConnectionError("down")
        return 0.01

    ejections = []
    registry, replica = _one_replica_registry(
        clock, probe, failure_threshold=2, readmit_seconds=5.0,
        on_eject=ejections.append)

    assert registry.probe(replica)
    assert replica.state is ReplicaState.HEALTHY
    assert replica.ewma_seconds == pytest.approx(0.01)

    health["ok"] = False
    registry.probe(replica)
    assert replica.state is ReplicaState.HEALTHY  # 1 < threshold
    registry.probe(replica)
    assert replica.state is ReplicaState.EJECTED
    assert ejections == [replica]

    # Inside the re-admission window the replica is not even probed.
    assert registry.probe(replica) is False
    assert replica.state is ReplicaState.EJECTED

    # Window opens; the probe fails; the window re-closes (HALF_OPEN
    # probe failure re-opens the breaker).
    clock.advance(5.0)
    registry.probe(replica)
    assert replica.state is ReplicaState.EJECTED
    assert replica.ejections == 2

    clock.advance(5.0)
    health["ok"] = True
    assert registry.probe(replica)
    assert replica.state is ReplicaState.HEALTHY
    assert replica.readmissions == 1


def test_registry_candidates_put_routable_replicas_first():
    clock = FakeClock()
    replicas = [Replica(name=f"h:{p}", host="h", port=p) for p in (1, 2)]
    registry = ReplicaRegistry(
        replicas, failure_threshold=1, readmit_seconds=60.0, clock=clock,
        probe_fn=lambda r: 0.0)
    registry.note_failure(replicas[0])
    assert replicas[0].state is ReplicaState.EJECTED
    for key in ("x", "y", "z"):
        cands = registry.candidates(key)
        assert [r.name for r in cands][0] == replicas[1].name
        assert cands[-1] is replicas[0]
    assert [r.name for r in registry.healthy()] == [replicas[1].name]


def test_probe_flap_chaos_drives_the_ejection_cycle():
    clock = FakeClock()
    registry, replica = _one_replica_registry(
        clock, lambda r: 0.0, failure_threshold=2, readmit_seconds=5.0)
    with inject_faults(seed=5, probe_flap_rate=1.0) as monkey:
        registry.probe(replica)
        registry.probe(replica)
    assert replica.state is ReplicaState.EJECTED
    assert monkey.log.probe_flaps == 2
    assert "probe_flap" in monkey.log.schedule


# ----- spool ownership lease ------------------------------------------------


def test_lease_acquire_heartbeat_staleness(tmp_path):
    clock = FakeClock(1000.0)
    lease = SpoolLease(tmp_path, ttl_seconds=1.0, clock=clock)
    assert lease.is_stale()  # no file yet
    assert lease.acquire("r1")
    assert lease.holder() == "r1"
    assert not lease.is_stale()
    clock.advance(2.0)
    assert lease.is_stale()
    assert lease.renew()
    assert not lease.is_stale()


def test_lease_takeover_refused_while_heartbeat_fresh(tmp_path):
    clock = FakeClock(1000.0)
    owner = SpoolLease(tmp_path, ttl_seconds=1.0, clock=clock)
    assert owner.acquire("r1")
    taker = SpoolLease(tmp_path, ttl_seconds=1.0, clock=clock)
    with pytest.raises(LeaseHeld):
        taker.takeover("router")
    # The owner dies (stops renewing); past the TTL the spool is
    # claimable, and the record names both parties.
    clock.advance(1.5)
    record = taker.takeover("router")
    assert record["owner"] == "router"
    assert record["taken_from"] == "r1"
    # The zombie's next heartbeat must fail — its journal is no longer
    # its own.
    assert owner.renew() is False


def test_lease_release_enables_immediate_takeover(tmp_path):
    clock = FakeClock()
    owner = SpoolLease(tmp_path, ttl_seconds=60.0, clock=clock)
    assert owner.acquire("r1")
    assert owner.release()
    taker = SpoolLease(tmp_path, ttl_seconds=60.0, clock=clock)
    record = taker.takeover("router")  # no TTL wait after release
    assert record["owner"] == "router"


def test_lease_takeover_force_overrides_fresh_lease(tmp_path):
    clock = FakeClock()
    owner = SpoolLease(tmp_path, ttl_seconds=60.0, clock=clock)
    assert owner.acquire("r1")
    taker = SpoolLease(tmp_path, ttl_seconds=60.0, clock=clock)
    record = taker.takeover("router", force=True)
    assert record["owner"] == "router" and record["taken_from"] == "r1"


# ----- journal ownership / handoff bookkeeping ------------------------------


def test_batch_journal_records_owner_and_takeover(tmp_path):
    spool = tmp_path / "spool"
    with TRACER.activate(make_traceparent()):
        with BatchRunner(spool, owner="r1", lease_ttl=60.0) as r1:
            r1.lease.acquire("r1")
            recs = [r1.submit_one(variant(i), steps=2) for i in range(2)]
            traces = {rec.job_id: rec.trace_id for rec in recs}
            r1.lease.release()  # graceful drain

    with BatchRunner(spool, owner="r2", lease_ttl=60.0) as r2:
        r2.lease.takeover("r2")
        jobs, order = r2.load()
        # Adopt one verdict from a peer, solve the other locally.
        r2.adopt_verdict(jobs[order[0]], "proved", 0, source="r3")
        report = r2.run(resume=True)
        assert report.executed == 1

    table = BatchRunner(spool).status().to_json()
    assert set(table["counts"]) == {"done"}
    rows = {row["job_id"]: row for row in table["jobs"]}
    adopted = rows[order[0]]
    solved = rows[order[1]]
    assert adopted["owner"] == "r1"
    assert adopted["adopted_from"] == "r3"
    assert solved["owner"] == "r1"
    assert solved["taken_over_by"] == "r2"
    assert table["handoff"]["adopted"] == 1
    assert table["handoff"]["taken_over"] >= 1
    # Handed-off jobs keep the trace id journaled at submission, and
    # the per-job handoff rows carry it too (satellite).
    for job_id, trace_id in traces.items():
        assert rows[job_id]["trace_id"] == trace_id
    hand_rows = {r["job_id"]: r for r in table["handoff"]["rows"]}
    assert hand_rows[order[0]]["adopted_from"] == "r3"
    assert hand_rows[order[0]]["trace_id"] == traces[order[0]]
    assert hand_rows[order[1]]["taken_over_by"] == "r2"


def test_batch_status_json_groups_orphans_by_owner(tmp_path):
    """Satellite: `batch status --json` names the owning replica for
    orphaned jobs, so ops can see whose backlog is stuck."""
    spool = tmp_path / "spool"
    with BatchRunner(spool, owner="replica-9") as runner:
        rec = runner.submit_one(variant(50), steps=2)
        runner.mark_running(rec)  # ...then "the process dies"

    out = _repro(["batch", "status", "--json", str(spool)])
    assert out.returncode == 0, out.stderr
    table = json.loads(out.stdout)
    assert table["counts"] == {"orphaned": 1}
    assert table["handoff"]["orphaned_by_owner"] == {"replica-9": 1}
    assert table["jobs"][0]["owner"] == "replica-9"
    assert table["jobs"][0]["taken_over_by"] is None


# ----- the router (in-process replicas) -------------------------------------


def _start_replica(tmp_path, name, *, solve_fn=proved_fn, lease_ttl=0.2):
    cfg = ServeConfig(
        port=0, spool_dir=tmp_path / name, workers=1, queue_limit=16,
        lease_ttl=lease_ttl,
    )
    service = AnalysisService(cfg, solve_fn=solve_fn)
    server = ReproServer(service)
    server.start_background()
    replica = Replica(
        name=f"127.0.0.1:{server.port}", host="127.0.0.1",
        port=server.port, spool=tmp_path / name)
    return service, server, replica


def _router(replicas, **overrides):
    kwargs = dict(
        port=0, name="router-t", probe_interval=60.0, probe_timeout=5.0,
        readmit_seconds=60.0, route_deadline=30.0, forward_timeout=20.0,
    )
    kwargs.update(overrides)
    return ClusterService(RouterConfig(**kwargs), replicas)


def _spec_with_primary(registry, node_name, *, start=0):
    """A payload whose job id the ring assigns to ``node_name``."""
    for i in range(start, start + 500):
        payload = {"source": variant(i), "steps": 3}
        spec = AnalysisService._validate(payload)
        if registry.ring.primary(job_id_for(spec)) == node_name:
            return payload
    raise AssertionError(f"no variant hashed onto {node_name}")


def test_router_routes_by_ring_and_proxies_reads(tmp_path):
    s0, srv0, rep0 = _start_replica(tmp_path, "r0")
    s1, srv1, rep1 = _start_replica(tmp_path, "r1")
    router = _router([rep0, rep1])
    router_server = ReproServer(router)
    router_server.start_background()
    try:
        client = ServiceClient(port=router_server.port, timeout=30.0)
        docs = [client.analyze(variant(300 + i), steps=3, retry=False)
                for i in range(4)]
        for doc in docs:
            assert doc["status"] == 200 and doc["verdict"] == "proved", doc
            assert doc["replica"] in (rep0.name, rep1.name)
            assert doc["trace_id"]
        # The same spec re-routes to the same replica (sticky ring
        # placement) and answers from its journal.
        again = client.analyze(variant(300), steps=3, retry=False)
        assert again["replica"] == docs[0]["replica"]
        assert again["job_id"] == docs[0]["job_id"]

        # Proxied read path: the row is found on whichever replica
        # solved it, annotated with the answering replica.
        job = client.job(docs[0]["job_id"])
        assert job["status"] == 200 and job["state"] == "done"
        assert job["replica"] == docs[0]["replica"]

        # Merged index across replicas.
        index = client.jobs()
        assert index["status"] == 200
        assert index["counts"].get("done", 0) >= 4
        assert index["replicas_reachable"] == 2

        # Control plane: topology + counters on the router...
        info = client.cluster()
        assert info["status"] == 200
        assert sorted(info["ring"]["nodes"]) == sorted(
            [rep0.name, rep1.name])
        assert info["counters"]["routed"] >= 4
        assert {r["state"] for r in info["replicas"]} == {"healthy"}
        # ...and a 404 from a plain replica (not a router).
        direct = ServiceClient(port=srv0.port, timeout=10.0).cluster()
        assert direct["status"] == 404
    finally:
        router_server.stop_background(drain=False)
        router.close()
        srv0.stop_background()
        srv1.stop_background()


def test_router_fails_over_to_next_ring_node(tmp_path):
    s0, srv0, rep0 = _start_replica(tmp_path, "r0")
    s1, srv1, rep1 = _start_replica(tmp_path, "r1")
    router = _router([rep0, rep1], failure_threshold=3)
    router_server = ReproServer(router)
    router_server.start_background()
    try:
        # Kill replica 0's listener, then submit a job the ring assigns
        # to it: the router must fail over to replica 1 and say so.
        srv0.stop_background(drain=False)
        payload = _spec_with_primary(router.registry, rep0.name)
        client = ServiceClient(port=router_server.port, timeout=30.0)
        doc = client.analyze(payload["source"], steps=3, retry=False)
        assert doc["status"] == 200 and doc["verdict"] == "proved", doc
        assert doc["replica"] == rep1.name
        assert doc["failovers"] >= 1
        info = client.cluster()
        assert info["counters"]["failovers"] >= 1
        dead = next(r for r in info["replicas"] if r["name"] == rep0.name)
        assert dead["consecutive_failures"] >= 1
    finally:
        router_server.stop_background(drain=False)
        router.close()
        srv1.stop_background()


def test_router_hedges_after_silence(tmp_path):
    """With hedging on, a dead primary costs one hedge timeout, not a
    full failover walk; the response is marked ``hedged``."""
    s1, srv1, rep1 = _start_replica(tmp_path, "r1")
    dead_port = _free_port()
    dead = Replica(name=f"127.0.0.1:{dead_port}", host="127.0.0.1",
                   port=dead_port)
    router = _router([dead, rep1], hedge_seconds=0.05)
    router_server = ReproServer(router)
    router_server.start_background()
    try:
        payload = _spec_with_primary(router.registry, dead.name)
        client = ServiceClient(port=router_server.port, timeout=30.0)
        doc = client.analyze(payload["source"], steps=3, retry=False)
        assert doc["status"] == 200 and doc["verdict"] == "proved", doc
        assert doc["replica"] == rep1.name
        info = client.cluster()
        assert info["counters"]["hedges"] >= 1
    finally:
        router_server.stop_background(drain=False)
        router.close()
        srv1.stop_background()


def test_replica_kill_chaos_exhausts_the_ring(tmp_path):
    """``replica_kill`` chaos turns every forward into a dead
    connection: the router walks the whole ring, then answers an
    honest 503 with a retry hint."""
    s0, srv0, rep0 = _start_replica(tmp_path, "r0")
    s1, srv1, rep1 = _start_replica(tmp_path, "r1")
    router = _router([rep0, rep1], failure_threshold=1, handoff=False)
    try:
        with inject_faults(seed=2, replica_kill_rate=1.0) as monkey:
            status, body = asyncio.run(
                router.analyze({"source": variant(400), "steps": 3}))
        assert status == 503
        assert body["failovers"] == 2
        assert body["retry_after"] > 0
        assert monkey.log.replica_kills == 2
        # The injected failures fed the health machine: threshold 1
        # ejects both replicas.
        assert all(r.state is ReplicaState.EJECTED
                   for r in router.registry.replicas.values())
    finally:
        router.close()
        srv0.stop_background()
        srv1.stop_background()


# ----- journal handoff ------------------------------------------------------


def _seed_dead_replica_spool(tmp_path, n=3):
    """A spool as a crashed replica would leave it: jobs journaled
    (pending), a lease whose heartbeat stopped."""
    spool = tmp_path / "dead"
    traces = {}
    with TRACER.activate(make_traceparent()):
        with BatchRunner(spool, owner="dead-replica",
                         lease_ttl=0.05) as runner:
            runner.lease.acquire("dead-replica")
            for i in range(n):
                rec = runner.submit_one(variant(600 + i), steps=3)
                traces[rec.job_id] = rec.trace_id
    return spool, traces


def test_handoff_adopts_peer_verdicts_and_resolves_the_rest(tmp_path):
    """The tentpole acceptance, in process: a dead replica's backlog is
    finished under its original trace ids — peers' verdicts adopted
    (never re-solved), the remainder executed by the router."""
    spool, traces = _seed_dead_replica_spool(tmp_path, n=3)
    s1, srv1, rep1 = _start_replica(tmp_path, "r1")
    dead = Replica(name="127.0.0.1:1", host="127.0.0.1", port=1,
                   spool=spool)
    router = _router([dead, rep1], failure_threshold=1, lease_ttl=0.5)
    try:
        # One of the dead replica's jobs already failed over and was
        # solved on the survivor.
        survivor_doc = ServiceClient(port=srv1.port, timeout=30.0).analyze(
            variant(600), steps=3, retry=False)
        assert survivor_doc["status"] == 200
        assert survivor_doc["job_id"] in traces

        time.sleep(0.1)  # the dead lease's 0.05s TTL lapses
        # A forward failure ejects the replica (threshold 1), which
        # fires the handoff thread.
        router.registry.note_failure(dead)
        _wait_for(
            lambda: router.counters["handoffs"] >= 1
            and not router._handoff_threads,
            timeout=60.0, message="journal handoff")

        assert router.counters["handoff_jobs_adopted"] == 1
        assert router.counters["handoff_jobs_resolved"] == 2

        table = BatchRunner(spool).status().to_json()
        assert set(table["counts"]) == {"done"}
        rows = {row["job_id"]: row for row in table["jobs"]}
        for job_id, trace_id in traces.items():
            row = rows[job_id]
            assert row["state"] == "done" and row["verdict"] == "proved"
            # Trace continuity: the recovery ran under the trace id
            # journaled at submission.
            assert row["trace_id"] == trace_id
            assert row["owner"] == "dead-replica"
        adopted = rows[survivor_doc["job_id"]]
        assert adopted["adopted_from"] == rep1.name
        resolved = [r for r in rows.values() if r["adopted_from"] is None]
        assert all(r["taken_over_by"] == "router-t" for r in resolved)
        # The lease now names the router, and where the spool came from.
        lease = SpoolLease(spool).read()
        assert lease["owner"] == "router-t"
        assert lease["taken_from"] == "dead-replica"

        # Read path after handoff: the dead replica can't answer, the
        # survivor never had the local-only jobs — the router serves
        # the handoff record.
        local_only = next(j for j in traces
                          if j != survivor_doc["job_id"])
        status, doc = asyncio.run(router.job_status(local_only))
        assert status == 200 and doc["state"] == "done"
        assert doc["handoff"] is True
        status, index = asyncio.run(router.jobs_index())
        assert {j for j in traces} <= {
            row["job_id"] for row in index["jobs"]}
    finally:
        router.close()
        srv1.stop_background()


def test_handoff_refused_while_owner_heartbeat_fresh(tmp_path):
    """Ejection is a suspicion; the lease is the arbiter.  A flapped-out
    but *alive* replica keeps its journal."""
    spool = tmp_path / "alive"
    with BatchRunner(spool, owner="alive-replica",
                     lease_ttl=300.0) as runner:
        runner.lease.acquire("alive-replica")
        runner.submit_one(variant(700), steps=3)

    alive = Replica(name="127.0.0.1:1", host="127.0.0.1", port=1,
                    spool=spool)
    router = _router([alive], failure_threshold=1)
    try:
        assert router.handoff(alive) is None
        assert router.counters["handoff_refused"] == 1
        assert router.counters["handoffs"] == 0
        # The backlog was not touched; the owner still holds the lease.
        table = BatchRunner(spool).status().to_json()
        assert table["counts"] == {"pending": 1}
        assert SpoolLease(spool).holder() == "alive-replica"
        # Once the owner releases (graceful drain), handoff proceeds.
        SpoolLease(spool).release()
        result = router.handoff(alive)
        assert result is not None and result["resolved"] == 1
    finally:
        router.close()


def test_concurrent_eject_cycles_run_one_handoff(tmp_path):
    """The eject → readmit → failed-probe cycle re-fires on_eject while
    a handoff is still mid-flight.  The second takeover would *succeed*
    (the lease owner is already the router), so without the in-flight
    guard two BatchRunners solve the same journal concurrently."""
    spool, traces = _seed_dead_replica_spool(tmp_path, n=1)
    dead = Replica(name="127.0.0.1:1", host="127.0.0.1", port=1,
                   spool=spool)
    router = _router([dead], failure_threshold=1)
    entered = threading.Event()
    gate = threading.Event()
    orig = router._adopt_from_peers

    def gated(runner, replica):
        entered.set()
        assert gate.wait(30.0)
        return orig(runner, replica)

    router._adopt_from_peers = gated
    try:
        time.sleep(0.1)  # the dead lease's 0.05s TTL lapses
        results: dict[str, object] = {}
        thread = threading.Thread(
            target=lambda: results.setdefault(
                "first", router.handoff(dead)))
        thread.start()
        assert entered.wait(10.0)
        # First handoff took the lease and is now blocked mid-flight:
        # a concurrent duplicate must be a no-op.
        assert router.handoff(dead) is None
        assert router.counters["handoffs"] == 1
        gate.set()
        thread.join(60.0)
        assert results["first"] is not None
        assert results["first"]["resolved"] == 1
        # And once finished, the spool is never handed off again.
        assert router.handoff(dead) is None
        assert router.counters["handoffs"] == 1
    finally:
        gate.set()
        router.close()


def test_adopt_prefers_done_verdict_on_later_survivor(tmp_path):
    """A job can be journaled on several replicas after failover; only
    one has finished it.  The scan must find that 'done' verdict even
    when an earlier survivor only knows the job as pending — waiting on
    the pending copy would stall the handoff for forward_timeout."""
    spool, traces = _seed_dead_replica_spool(tmp_path, n=1)
    dead = Replica(name="127.0.0.1:1", host="127.0.0.1", port=1,
                   spool=spool)
    peer_a = Replica(name="127.0.0.1:2", host="127.0.0.1", port=2)
    peer_b = Replica(name="127.0.0.1:3", host="127.0.0.1", port=3)
    router = ClusterService(
        RouterConfig(port=0, name="router-t", probe_interval=60.0,
                     readmit_seconds=60.0, forward_timeout=5.0),
        [dead, peer_a, peer_b],
        sleep=lambda s: pytest.fail(
            "waited on a pending peer despite a done verdict elsewhere"),
    )

    def fake_peer_job(peer, job_id):
        if peer.name == peer_b.name:
            return {"status": 200, "state": "done", "verdict": "proved",
                    "exit_code": 0}
        return {"status": 200, "state": "pending"}

    router._peer_job = fake_peer_job
    try:
        time.sleep(0.1)  # the dead lease's 0.05s TTL lapses
        result = router.handoff(dead)
        assert result is not None
        assert result["adopted"] == 1 and result["resolved"] == 0
        rows = BatchRunner(spool).status().to_json()["jobs"]
        assert rows[0]["adopted_from"] == peer_b.name
    finally:
        router.close()


def test_adopt_wait_loop_uses_injected_sleep(tmp_path):
    """The wait-for-in-flight-peer loop paces with the injectable sleep
    (a fake clock plus a real time.sleep would spin forever)."""
    spool, traces = _seed_dead_replica_spool(tmp_path, n=1)
    dead = Replica(name="127.0.0.1:1", host="127.0.0.1", port=1,
                   spool=spool)
    peer = Replica(name="127.0.0.1:2", host="127.0.0.1", port=2)
    state = {"value": "running"}
    sleeps: list[float] = []

    def fake_sleep(seconds: float) -> None:
        sleeps.append(seconds)
        state["value"] = "done"  # the peer finishes during the nap

    router = ClusterService(
        RouterConfig(port=0, name="router-t", probe_interval=60.0,
                     readmit_seconds=60.0, forward_timeout=5.0),
        [dead, peer], sleep=fake_sleep)

    def fake_peer_job(p, job_id):
        if state["value"] == "done":
            return {"status": 200, "state": "done", "verdict": "proved",
                    "exit_code": 0}
        return {"status": 200, "state": "running"}

    router._peer_job = fake_peer_job
    try:
        time.sleep(0.1)  # the dead lease's 0.05s TTL lapses
        result = router.handoff(dead)
        assert result is not None
        assert result["adopted"] == 1 and result["resolved"] == 0
        assert sleeps == [0.2]
    finally:
        router.close()


def test_handoff_records_lru_capped():
    router = _router([])
    try:
        router._HANDOFF_RECORDS_MAX = 4  # instance shadow for the test
        with router._handoff_lock:
            router._remember_handoff_rows(
                [{"job_id": f"j{i}", "state": "done"} for i in range(6)])
        assert list(router._handoff_records) == ["j2", "j3", "j4", "j5"]
        # A refreshed row moves to the young end; the oldest is evicted.
        with router._handoff_lock:
            router._remember_handoff_rows(
                [{"job_id": "j2"}, {"job_id": "j9"}])
        assert list(router._handoff_records) == ["j4", "j5", "j2", "j9"]
    finally:
        router.close()


def test_analyze_surfaces_unrelated_runtime_errors():
    """Only the executor's shutdown refusal means 'draining'; any other
    RuntimeError is a bug and must not be mislabeled as a 503."""
    router = _router([])

    def boom(payload, tenant):
        raise RuntimeError("boom")

    router._forward = boom
    payload = {"source": variant(950), "steps": 3}
    try:
        with pytest.raises(RuntimeError, match="boom"):
            asyncio.run(router.analyze(payload))
        # After drain the pool refuses new work: that (and only that)
        # maps to the graceful draining response.
        router.drain()
        status, body = asyncio.run(router.analyze(payload))
        assert status == 503 and body["error"] == "draining"
    finally:
        router.close()


# ----- `repro top` reconnect (satellite) ------------------------------------


def test_top_reconnects_with_backoff_and_keeps_last_frame():
    port = _free_port()  # nothing listens here
    out = io.StringIO()
    sleeps: list[float] = []
    rc = run_top(f"127.0.0.1:{port}", interval=0.5, iterations=3,
                 out=out, sleep=sleeps.append)
    assert rc == 0
    text = out.getvalue()
    assert "[reconnecting #1:" in text
    assert "[reconnecting #3:" in text
    # Exponential backoff between failed frames, capped.
    assert sleeps == [0.5, 1.0]


# ----- client failover + deadline (satellites) ------------------------------


def _make_local_service(tmp_path):
    cfg = ServeConfig(port=0, spool_dir=tmp_path / "spool", workers=1,
                      queue_limit=8)
    service = AnalysisService(cfg, solve_fn=proved_fn)
    server = ReproServer(service)
    server.start_background()
    return service, server


def test_client_rotates_to_failover_endpoint(tmp_path):
    service, server = _make_local_service(tmp_path)
    dead_port = _free_port()
    try:
        client = ServiceClient(
            "127.0.0.1", dead_port, timeout=10.0, max_retries=3,
            sleep=lambda s: None,
            failover=[f"127.0.0.1:{server.port}"])
        doc = client.analyze(variant(800), steps=3)
        assert doc["status"] == 200 and doc["verdict"] == "proved"
        assert client.last_report["failovers"] >= 1
        assert client.last_report["endpoint"] == \
            f"127.0.0.1:{server.port}"
        # The client now points at the endpoint that answered.
        assert (client.host, client.port) == ("127.0.0.1", server.port)
    finally:
        server.stop_background()


def test_client_backs_off_after_full_failover_rotation():
    """With every endpoint down (whole cluster restarting), the client
    must sleep the jittered backoff after each full lap through the
    endpoint list — never spin through max_retries with zero sleep."""
    sleeps: list[float] = []
    client = ServiceClient(
        "127.0.0.1", _free_port(), timeout=1.0, max_retries=5,
        sleep=sleeps.append,
        failover=[f"127.0.0.1:{_free_port()}"])
    with pytest.raises(ServiceUnavailable):
        client.analyze(variant(900), steps=3)
    # 6 attempts over 2 endpoints: rotate free between fresh endpoints,
    # back off once per completed lap (after attempts 2 and 4).
    assert client.last_report["failovers"] == 5
    assert len(sleeps) == 2
    assert all(s > 0.0 for s in sleeps)


def test_client_deadline_caps_total_retry_wall_time(tmp_path):
    service, server = _make_local_service(tmp_path)
    service.admission.draining = True  # reject everything with 503
    clock = FakeClock()
    sleeps: list[float] = []

    def fake_sleep(seconds: float) -> None:
        sleeps.append(seconds)
        clock.advance(max(seconds, 0.25))

    try:
        client = ServiceClient(
            port=server.port, timeout=10.0, max_retries=50,
            deadline=2.0, clock=clock, sleep=fake_sleep)
        with pytest.raises(ServiceUnavailable) as err:
            client.analyze(variant(801), steps=3)
        assert "deadline 2.0s" in str(err.value)
        report = client.last_report
        assert report["deadline_exceeded"] is True
        # The deadline, not the 50-attempt budget, stopped the loop —
        # and every sleep was clamped inside the remaining budget.
        assert report["attempts"] < 50
        assert all(s <= 2.0 for s in sleeps)
        assert report["status"] == 503
    finally:
        service.admission.draining = False
        server.stop_background()


# ----- the acceptance test (subprocess, real SIGKILL) -----------------------


@pytest.mark.slow
def test_kill_one_of_two_replicas_loses_no_jobs(tmp_path):
    """Kill-one-of-two chaos: SIGKILL a replica mid-burst behind a
    router.  Every admitted job reaches a definitive verdict (failover
    or journal handoff), no idempotency key is solved twice, and
    handed-off jobs keep their original trace ids."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    spools = [str(tmp_path / "r1"), str(tmp_path / "r2")]
    ports = [_free_port(), _free_port()]
    router_port = _free_port()

    def serve_proc(args):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, start_new_session=True,
        )

    replicas = [
        serve_proc(["--port", str(ports[i]), "--spool", spools[i],
                    "--workers", "1", "--queue-limit", "16",
                    "--lease-ttl", "1"])
        for i in range(2)
    ]
    route = ",".join(f"127.0.0.1:{ports[i]}={spools[i]}"
                     for i in range(2))
    router = serve_proc([
        "--port", str(router_port), "--route", route,
        "--probe-interval", "0.2", "--probe-timeout", "1.0",
        "--readmit", "0.5", "--failure-threshold", "2",
        "--lease-ttl", "1", "--name", "router-acc",
    ])
    procs = replicas + [router]
    client = ServiceClient(port=router_port, timeout=60.0,
                           max_retries=8)
    try:
        for port in ports + [router_port]:
            probe = ServiceClient(port=port, timeout=10.0)
            _wait_for(
                lambda p=probe: _up(p), timeout=30.0,
                message=f"server on :{port}")

        results: dict[str, dict] = {}
        lock = threading.Lock()

        errors: list[Exception] = []

        def one(i: int) -> None:
            own = ServiceClient(port=router_port, timeout=60.0,
                                max_retries=8)
            try:
                doc = own.analyze(variant(900 + i), steps=3)
            except Exception as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)
                return
            with lock:
                results[doc["job_id"]] = doc

        # Warm phase: four jobs land on their ring primaries.
        for i in range(4):
            one(i)
        assert all(d["status"] == 200 for d in results.values())

        # Burst phase: eight concurrent jobs; SIGKILL replica 1 while
        # they are in flight.
        threads = [threading.Thread(target=one, args=(4 + i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        time.sleep(0.15)
        replicas[0].kill()  # SIGKILL: no drain, no lease release
        for t in threads:
            t.join(120.0)

        # Every admitted job got a definitive verdict, by primary
        # placement or failover.
        assert not errors, errors
        assert len(results) == 12
        for doc in results.values():
            assert doc["status"] == 200, doc
            assert doc["verdict"] == "proved", doc
            assert doc["trace_id"], doc

        # The router must eject the dead replica and complete journal
        # handoff (retrying until the lease heartbeat is stale).
        def handoff_done() -> bool:
            info = client.cluster()
            if info.get("status") != 200:
                return False
            dead = next((r for r in info["replicas"]
                         if r["name"] == f"127.0.0.1:{ports[0]}"), None)
            return (dead is not None and dead["state"] == "ejected"
                    and info["counters"]["handoffs"] >= 1)

        _wait_for(handoff_done, timeout=60.0, interval=0.2,
                  message="ejection + journal handoff")

        # Re-query every job through the router: identical, definitive
        # verdicts, same trace id as the original response.
        def all_requeryable() -> bool:
            for job_id in results:
                doc = client.job(job_id)
                if doc.get("status") != 200 or doc.get("state") != "done":
                    return False
            return True

        _wait_for(all_requeryable, timeout=60.0, interval=0.2,
                  message="every job re-queryable as done")
        for job_id, original in results.items():
            doc = client.job(job_id)
            assert doc["verdict"] == original["verdict"], doc

        # Graceful stop of the survivors, then audit the journals.
        outputs = {}
        for proc in (router, replicas[1]):
            proc.send_signal(signal.SIGTERM)
            outputs[proc.pid] = proc.communicate(timeout=60.0)
            assert proc.returncode == 0, outputs[proc.pid][1]
        assert "router drained:" in outputs[router.pid][1], \
            outputs[router.pid]

        tables = []
        for spool in spools:
            out = _repro(["batch", "status", "--json", spool])
            assert out.returncode == 0, out.stderr
            tables.append(json.loads(out.stdout))

        # The dead replica's spool was finished by the handoff: every
        # job done, under its original trace id.
        dead_rows = {r["job_id"]: r for r in tables[0]["jobs"]}
        for job_id, row in dead_rows.items():
            assert row["state"] == "done", row
            if job_id in results:
                assert row["trace_id"] == results[job_id]["trace_id"], row
        handed = [r for r in dead_rows.values()
                  if r["taken_over_by"] or r["adopted_from"]]
        # The SIGKILL mid-burst left a backlog; handoff finished it.
        assert tables[0]["handoff"]["taken_over"] \
            + tables[0]["handoff"]["adopted"] == len(handed)

        # Satellite: the handoff rows in `batch status --json` carry
        # trace ids, continuous with the original client responses —
        # a handed-off job is joinable against its distributed trace.
        handoff_rows = tables[0]["handoff"]["rows"]
        assert {r["job_id"] for r in handoff_rows} == \
            {r["job_id"] for r in handed}
        for row in handoff_rows:
            assert row["trace_id"], row
            if row["job_id"] in results:
                assert row["trace_id"] == \
                    results[row["job_id"]]["trace_id"], row

        # No duplicate solves per idempotency key: across both spools,
        # each job id has exactly one non-adopted `done` row.
        solves: dict[str, int] = {}
        for table in tables:
            for row in table["jobs"]:
                if row["state"] == "done" and not row["adopted_from"]:
                    solves[row["job_id"]] = \
                        solves.get(row["job_id"], 0) + 1
        for job_id in results:
            assert solves.get(job_id, 0) == 1, (job_id, solves)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30.0)


def _up(probe: ServiceClient) -> bool:
    try:
        return probe.health().get("status") == 200
    except ServiceUnavailable:
        return False
