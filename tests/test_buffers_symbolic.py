"""Tests for the symbolic buffer and list models.

Strategy: drive the symbolic models with *constant* guards and values,
evaluate the resulting terms under an empty assignment, and compare
against a plain Python reference — randomized with hypothesis.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.symbolic import (
    SymbolicCounterBuffer,
    SymbolicList,
    SymbolicListBuffer,
    SymbolicPacket,
)
from repro.smt.terms import FALSE, TRUE, evaluate, mk_bool, mk_int


def val(term):
    return evaluate(term, {})


class TestSymbolicList:
    def test_push_pop_fifo(self):
        lst = SymbolicList(4)
        lst.push_back(mk_int(7), TRUE)
        lst.push_back(mk_int(9), TRUE)
        assert val(lst.len_term()) == 2
        assert val(lst.pop_front(TRUE)) == 7
        assert val(lst.pop_front(TRUE)) == 9
        assert val(lst.empty()) is True

    def test_pop_empty_sentinel(self):
        lst = SymbolicList(2)
        assert val(lst.pop_front(TRUE)) == -1
        assert val(lst.len_term()) == 0

    def test_guarded_push_noop(self):
        lst = SymbolicList(2)
        lst.push_back(mk_int(1), FALSE)
        assert val(lst.len_term()) == 0

    def test_has(self):
        lst = SymbolicList(3)
        lst.push_back(mk_int(2), TRUE)
        assert val(lst.has(mk_int(2))) is True
        assert val(lst.has(mk_int(5))) is False

    def test_overflow_flag(self):
        lst = SymbolicList(1)
        lst.push_back(mk_int(1), TRUE)
        assert val(lst.overflowed) is False
        lst.push_back(mk_int(2), TRUE)
        assert val(lst.overflowed) is True
        assert val(lst.len_term()) == 1

    @given(st.lists(st.one_of(
        st.tuples(st.just("push"), st.integers(0, 5)),
        st.tuples(st.just("pop"), st.just(0)),
    ), max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_random_ops_match_deque(self, ops):
        lst = SymbolicList(6)
        ref: deque = deque()
        for op, arg in ops:
            if op == "push":
                lst.push_back(mk_int(arg), TRUE)
                if len(ref) < 6:
                    ref.append(arg)
            else:
                got = val(lst.pop_front(TRUE))
                expected = ref.popleft() if ref else -1
                assert got == expected
        assert val(lst.len_term()) == len(ref)
        for value in range(6):
            assert val(lst.has(mk_int(value))) == (value in ref)


def pkt(flow, size=1, present=True):
    return SymbolicPacket(mk_int(flow), mk_int(size), mk_bool(present))


class TestSymbolicListBuffer:
    def test_enqueue_dequeue(self):
        buf = SymbolicListBuffer(4)
        buf.enqueue(pkt(0, 2))
        buf.enqueue(pkt(1, 3))
        assert val(buf.backlog_p()) == 2
        assert val(buf.backlog_b()) == 5
        out = buf.dequeue_packets(mk_int(1), TRUE)
        taken = [(val(p.flow), val(p.size)) for p in out if val(p.present)]
        assert taken == [(0, 2)]
        assert val(buf.backlog_p()) == 1

    def test_absent_packet_ignored(self):
        buf = SymbolicListBuffer(2)
        buf.enqueue(pkt(0, present=False))
        assert val(buf.backlog_p()) == 0

    def test_capacity_drop_stats(self):
        buf = SymbolicListBuffer(1)
        buf.enqueue(pkt(0))
        buf.enqueue(pkt(1))
        assert val(buf.backlog_p()) == 1
        assert val(buf.stats.drop_p) == 1
        assert val(buf.stats.enq_p) == 1

    def test_filtered_backlog(self):
        buf = SymbolicListBuffer(4)
        buf.enqueue(pkt(0, 2))
        buf.enqueue(pkt(1, 4))
        buf.enqueue(pkt(0, 6))
        assert val(buf.backlog_p("flow", mk_int(0))) == 2
        assert val(buf.backlog_b("flow", mk_int(0))) == 8
        assert val(buf.backlog_p("size", mk_int(4))) == 1

    def test_dequeue_bytes_whole_packets(self):
        buf = SymbolicListBuffer(4)
        buf.enqueue(pkt(0, 3))
        buf.enqueue(pkt(1, 3))
        out = buf.dequeue_bytes(mk_int(5), TRUE)
        taken = [val(p.flow) for p in out if val(p.present)]
        assert taken == [0]
        assert val(buf.backlog_p()) == 1

    def test_guarded_dequeue_noop(self):
        buf = SymbolicListBuffer(2)
        buf.enqueue(pkt(0))
        buf.dequeue_packets(mk_int(1), FALSE)
        assert val(buf.backlog_p()) == 1
        assert val(buf.stats.deq_p) == 0

    @given(st.lists(st.one_of(
        st.tuples(st.just("enq"), st.integers(0, 2), st.integers(1, 3)),
        st.tuples(st.just("deq"), st.integers(0, 3), st.just(1)),
    ), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_random_ops_match_reference(self, ops):
        from repro.buffers.concrete import ListBuffer
        from repro.buffers.packets import Packet

        sym = SymbolicListBuffer(5)
        ref = ListBuffer(capacity=5)
        for op, a, b in ops:
            if op == "enq":
                sym.enqueue(pkt(a, b))
                ref.enqueue(Packet(flow=a, size=b))
            else:
                out = sym.dequeue_packets(mk_int(a), TRUE)
                expected = ref.dequeue_packets(a)
                got = [
                    (val(p.flow), val(p.size)) for p in out if val(p.present)
                ]
                assert got == [(p.flow, p.size) for p in expected]
        assert val(sym.backlog_p()) == ref.backlog_p()
        assert val(sym.stats.deq_p) == ref.stats.dequeued_packets
        assert val(sym.stats.drop_p) == ref.stats.dropped_packets


class TestSymbolicCounterBuffer:
    def test_enqueue_and_backlog(self):
        buf = SymbolicCounterBuffer(3)
        buf.enqueue(pkt(0))
        buf.enqueue(pkt(2))
        buf.enqueue(pkt(2))
        assert val(buf.backlog_p()) == 3
        assert val(buf.backlog_p("flow", mk_int(2))) == 2
        assert val(buf.backlog_b()) == 3  # unit size

    def test_dequeue_lowest_first_bulk(self):
        buf = SymbolicCounterBuffer(3)
        for flow in (2, 0, 2):
            buf.enqueue(pkt(flow))
        out = buf.dequeue_packets(mk_int(2), TRUE)
        transfers = [
            (val(p.flow), val(p.bulk)) for p in out if val(p.present)
        ]
        assert transfers == [(0, 1), (2, 1)]
        assert val(buf.backlog_p()) == 1

    def test_capacity(self):
        buf = SymbolicCounterBuffer(2, capacity=1)
        buf.enqueue(pkt(0))
        buf.enqueue(pkt(1))
        assert val(buf.backlog_p()) == 1
        assert val(buf.stats.drop_p) == 1

    def test_enqueue_bulk_with_room_limit(self):
        buf = SymbolicCounterBuffer(2, capacity=3)
        buf.enqueue_bulk(0, mk_int(5))
        assert val(buf.backlog_p()) == 3
        assert val(buf.stats.drop_p) == 2

    def test_havoc_produces_bounded_vars(self):
        bounds = {}
        buf = SymbolicCounterBuffer(2, capacity=4)
        buf.havoc("hv", stat_bound=16, bounds=bounds)
        assert all(0 <= lo <= hi for lo, hi in bounds.values())
        assert len(bounds) >= 2 + 6  # counts + stats
