"""The serve control plane: admission, the shedding ladder, the
breaker, chaos on the request path, and SIGTERM drain.

The centerpiece is the saturation test (the acceptance criterion):
with admission limit Q and 4×Q concurrent requests against one blocked
worker, every request gets a terminal answer — a verdict, a fast
UNKNOWN, or 429 + ``Retry-After`` — the queue depth never exceeds Q,
and a SIGTERM'd server journals its backlog for ``repro batch resume``
to finish with identical verdicts.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.analysis.result import AnalysisOutcome, Verdict
from repro.client import ServiceClient, ServiceUnavailable
from repro.runtime.budget import ExhaustionReason, SolverFault
from repro.runtime.chaos import inject_faults
from repro.serve import (
    AdmissionController,
    AnalysisService,
    BreakerState,
    CircuitBreaker,
    OverloadLevel,
    ReproServer,
    ServeConfig,
    TenantPolicy,
    TokenBucket,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SRC = """
prog(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
  assert(backlog-p(ob) >= 0);
}
"""


def variant(i: int) -> str:
    """Distinct job specs: job ids hash the source text, so each
    request needs its own program (a trailing comment suffices)."""
    return SRC + f"// variant {i}\n"


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----- token bucket / admission units ---------------------------------------


def test_token_bucket_refills_on_fake_clock():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
    for _ in range(4):
        assert bucket.take() == 0.0
    wait = bucket.take()
    assert wait == pytest.approx(0.5)
    clock.advance(0.5)
    assert bucket.take() == 0.0


def test_admission_queue_bound_and_retry_after():
    clock = FakeClock()
    ctrl = AdmissionController(queue_limit=2, clock=clock)
    assert ctrl.admit().admitted
    assert ctrl.admit().admitted
    rejected = ctrl.admit()
    assert not rejected.admitted
    assert rejected.status == 429
    assert rejected.reason == "queue_full"
    assert int(rejected.retry_after_header) >= 1
    assert ctrl.max_queued == 2
    # One slot frees; admission resumes.
    ctrl.note_started()
    assert ctrl.admit().admitted


def test_admission_ladder_levels():
    ctrl = AdmissionController(queue_limit=8, clock=FakeClock())
    assert ctrl.level() is OverloadLevel.NORMAL
    for _ in range(4):
        ctrl.admit()
    assert ctrl.level() is OverloadLevel.DEGRADED
    for _ in range(3):
        ctrl.admit()
    assert ctrl.level() is OverloadLevel.SHEDDING


def test_admission_sheds_low_priority_tenants_only():
    clock = FakeClock()
    ctrl = AdmissionController(queue_limit=8, shed_priority_floor=1,
                               clock=clock)
    ctrl.register_tenant(TenantPolicy(name="batch", priority=0))
    ctrl.register_tenant(
        TenantPolicy(name="interactive", rate=50.0, burst=100.0, priority=5))
    for _ in range(7):
        assert ctrl.admit("interactive").admitted
    assert ctrl.level() is OverloadLevel.SHEDDING
    shed = ctrl.admit("batch")
    assert not shed.admitted and shed.reason == "shed"
    assert ctrl.admit("interactive").admitted  # above the floor


def test_admission_rate_limit_and_budget():
    clock = FakeClock()
    ctrl = AdmissionController(queue_limit=64, clock=clock)
    ctrl.register_tenant(
        TenantPolicy(name="t", rate=1.0, burst=2.0, budget_seconds=1.0))
    assert ctrl.admit("t").admitted
    assert ctrl.admit("t").admitted
    limited = ctrl.admit("t")
    assert not limited.admitted and limited.reason == "rate_limited"
    assert limited.retry_after > 0
    # Spend past the tenant's cumulative solve-seconds budget.
    clock.advance(100.0)
    ctrl.note_finished("t", 2.0)
    spent = ctrl.admit("t")
    assert not spent.admitted and spent.reason == "budget"


def test_admission_draining_answers_503():
    ctrl = AdmissionController(queue_limit=4, clock=FakeClock())
    ctrl.draining = True
    adm = ctrl.admit()
    assert not adm.admitted and adm.status == 503 and adm.reason == "draining"


# ----- circuit breaker ------------------------------------------------------


def test_breaker_trips_half_opens_and_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, reset_seconds=5.0,
                             clock=clock)
    assert breaker.state is BreakerState.CLOSED
    for _ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()
    clock.advance(5.0)
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.allow()        # the probe
    assert not breaker.allow()    # probe_limit=1: only one at a time
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    # A failing probe re-opens.
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 3  # initial trip, post-recovery trip, re-trip


def test_breaker_half_open_admits_one_probe_under_contention():
    """Concurrent requests racing a HALF_OPEN breaker: exactly
    ``probe_limit`` winners; the losers get a retry hint."""
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_seconds=5.0,
                             clock=clock)
    breaker.record_failure()
    clock.advance(5.0)  # the reset window opens

    barrier = threading.Barrier(8)
    admitted: list[bool] = []
    lock = threading.Lock()

    def racer() -> None:
        barrier.wait()
        ok = breaker.allow()
        with lock:
            admitted.append(ok)

    threads = [threading.Thread(target=racer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10.0)
    assert admitted.count(True) == 1
    assert breaker.state is BreakerState.HALF_OPEN
    # Losers wait one probe's time, not a full reset window.
    assert breaker.retry_after() == pytest.approx(1.0)


def test_breaker_retry_after_counts_down_the_reset_window():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_seconds=5.0,
                             clock=clock)
    assert breaker.retry_after() == 0.0  # CLOSED
    breaker.record_failure()
    assert breaker.retry_after() == pytest.approx(5.0)
    clock.advance(2.0)
    assert breaker.retry_after() == pytest.approx(3.0)


# ----- service helpers ------------------------------------------------------


def make_service(tmp_path, *, solve_fn=None, workers=1, queue_limit=4,
                 breaker=None, **cfg_kwargs):
    cfg = ServeConfig(
        port=0, spool_dir=tmp_path / "spool", workers=workers,
        queue_limit=queue_limit, **cfg_kwargs,
    )
    return AnalysisService(cfg, solve_fn=solve_fn, breaker=breaker)


def call(service, payload, tenant="default"):
    return asyncio.run(service.analyze(payload, tenant=tenant))


def proved_fn(rec, budget, escalation):
    return AnalysisOutcome(verdict=Verdict.PROVED)


# ----- service core ---------------------------------------------------------


def test_service_answers_and_replays_from_journal(tmp_path):
    service = make_service(tmp_path, solve_fn=proved_fn)
    try:
        status, body = call(service, {"source": SRC, "steps": 3})
        assert status == 200 and body["verdict"] == "proved"
        status, again = call(service, {"source": SRC, "steps": 3})
        assert status == 200 and again.get("replayed") is True
        assert again["job_id"] == body["job_id"]
        status, job = service.job_status(body["job_id"])
        assert status == 200 and job["state"] == "done"
    finally:
        service.close()


def test_service_validates_requests(tmp_path):
    service = make_service(tmp_path, solve_fn=proved_fn)
    try:
        for payload in (None, [], {"source": ""}, {"source": 3},
                        {"source": SRC, "steps": 0},
                        {"source": SRC, "backend": "voodoo"}):
            status, body = call(service, payload)
            assert status == 400 and "error" in body
    finally:
        service.close()


def test_service_deadletters_unparseable_source(tmp_path):
    service = make_service(tmp_path)  # the real solve path
    try:
        status, body = call(service, {"source": "this is not buffy"})
        assert status == 400 and body["note"] == "invalid"
        _, job = service.job_status(body["job_id"])
        assert job["state"] == "deadletter"
        # User errors never feed the breaker.
        assert service.breaker.state is BreakerState.CLOSED
    finally:
        service.close()


def test_request_kill_chaos_feeds_breaker_and_still_answers(tmp_path):
    service = make_service(tmp_path, solve_fn=proved_fn)
    try:
        with inject_faults(seed=7, request_kill_rate=1.0) as monkey:
            status, body = call(service, {"source": variant(1)})
        assert status == 200  # terminal answer, never an error
        assert body["verdict"] == "undecided" and body["note"] == "fault"
        assert monkey.log.request_kills == 1
        _, job = service.job_status(body["job_id"])
        assert job["state"] == "failed"  # journaled for resume
    finally:
        service.close()


def test_breaker_opens_after_repeated_kills_then_recovers(tmp_path):
    breaker = CircuitBreaker(failure_threshold=3, reset_seconds=0.0)
    service = make_service(tmp_path, solve_fn=proved_fn, breaker=breaker)
    try:
        with inject_faults(seed=7, request_kill_rate=1.0):
            for i in range(3):
                status, body = call(service, {"source": variant(i)})
                assert body["note"] == "fault"
        assert breaker.trips == 1
        # reset_seconds=0: the next request is a half-open probe and,
        # with chaos gone, it succeeds and closes the breaker.
        status, body = call(service, {"source": variant(9)})
        assert status == 200 and body["verdict"] == "proved"
        assert breaker.state is BreakerState.CLOSED
    finally:
        service.close()


def test_open_breaker_short_circuits_to_fast_unknown(tmp_path):
    breaker = CircuitBreaker(failure_threshold=1, reset_seconds=3600.0)
    service = make_service(tmp_path, solve_fn=proved_fn, breaker=breaker)
    try:
        with inject_faults(seed=7, request_kill_rate=1.0):
            call(service, {"source": variant(1)})
        assert breaker.state is BreakerState.OPEN
        started = time.monotonic()
        status, body = call(service, {"source": variant(2)})
        assert status == 200 and body["note"] == "breaker_open"
        assert body["verdict"] == "undecided"
        assert time.monotonic() - started < 1.0  # fast, no solve
        # The unsolved job stays pending for `batch resume`.
        _, job = service.job_status(body["job_id"])
        assert job["state"] == "pending"
    finally:
        service.close()


def test_half_open_probe_loser_gets_503_with_retry_after(tmp_path):
    """Two concurrent requests against a HALF_OPEN breaker: one is the
    probe (solves), the loser gets an honest 503 + Retry-After instead
    of a misleading UNKNOWN."""
    breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.0)
    entered = threading.Event()
    gate = threading.Event()

    def gated_fn(rec, budget, escalation):
        entered.set()
        gate.wait(30.0)
        return AnalysisOutcome(verdict=Verdict.PROVED)

    service = make_service(tmp_path, solve_fn=gated_fn, workers=2,
                           breaker=breaker)
    try:
        breaker.record_failure()  # OPEN; reset=0 → next allow is a probe
        probe_result: dict = {}

        def probe_request() -> None:
            status, body = call(service, {"source": variant(40)})
            probe_result["status"] = status
            probe_result["body"] = body

        t = threading.Thread(target=probe_request)
        t.start()
        assert entered.wait(30.0)  # the probe holds the half-open slot
        status, body = call(service, {"source": variant(41)})
        assert status == 503
        assert body["note"] == "probe_lost"
        assert "probe in flight" in body["error"]
        assert body["retry_after"] >= 0.1
        # The loser's job is journaled for resume, not lost.
        _, job = service.job_status(body["job_id"])
        assert job["state"] == "pending"
        gate.set()
        t.join(30.0)
        assert probe_result["status"] == 200
        assert probe_result["body"]["verdict"] == "proved"
        assert breaker.state is BreakerState.CLOSED
    finally:
        gate.set()
        service.close()


def test_health_names_the_replica_and_its_lease(tmp_path):
    service = make_service(tmp_path, solve_fn=proved_fn, name="replica-7")
    try:
        status, body = service.health()
        assert status == 200
        assert body["name"] == "replica-7"
        assert body["lease_holder"] == "replica-7"
    finally:
        service.close()


# ----- the saturation test (acceptance criterion) ---------------------------


def test_saturation_ladder_bounded_queue_and_terminal_answers(tmp_path):
    """4×Q concurrent requests against one gated worker: Q queued at
    most, 429 + Retry-After past the bound, degraded fast UNKNOWNs,
    every connection answered."""
    Q = 4
    gate = threading.Event()

    def gated_fn(rec, budget, escalation):
        if escalation is not None:
            # The degraded rung: answer a fast UNKNOWN within budget.
            budget.start()
            return AnalysisOutcome(
                verdict=Verdict.EXHAUSTED,
                report=budget.report(
                    ExhaustionReason.DEADLINE, "degraded rung"),
            )
        budget.start()
        while not gate.wait(0.01):
            if budget.exhausted() is not None:
                return AnalysisOutcome(
                    verdict=Verdict.EXHAUSTED,
                    report=budget.report(
                        ExhaustionReason.DEADLINE, "gated"),
                )
        return AnalysisOutcome(verdict=Verdict.PROVED)

    service = make_service(
        tmp_path, solve_fn=gated_fn, workers=1, queue_limit=Q,
        deadline_seconds=30.0,
    )
    server = ReproServer(service)
    server.start_background()
    results: list[dict] = []
    errors: list[Exception] = []
    lock = threading.Lock()

    def one_request(i: int) -> None:
        client = ServiceClient(port=server.port, timeout=60.0)
        try:
            doc = client.analyze(variant(i), retry=False)
        except Exception as exc:  # noqa: BLE001 - recorded for assertion
            with lock:
                errors.append(exc)
            return
        with lock:
            results.append(doc)

    try:
        threads = [
            threading.Thread(target=one_request, args=(i,))
            for i in range(4 * Q)
        ]
        for t in threads:
            t.start()
        # Open the gate only once every request has been admitted or
        # rejected, so the saturated state is what we measure.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            with service._counters_lock:
                decided = (service.counters["admitted"]
                           + service.counters["rejected"])
            if decided >= 4 * Q:
                break
            time.sleep(0.01)
        # While still saturated, Retry-After must be a real HTTP
        # header, not just a body field.
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10.0)
        try:
            conn.request(
                "POST", "/v1/analyze",
                body=json.dumps({"source": variant(999)}),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            resp.read()
            assert resp.status == 429
            assert int(resp.getheader("Retry-After")) >= 1
        finally:
            conn.close()
        gate.set()
        for t in threads:
            t.join(60.0)

        assert not errors, f"dropped/errored connections: {errors!r}"
        assert len(results) == 4 * Q  # every request answered
        statuses = sorted(d["status"] for d in results)
        assert set(statuses) <= {200, 429}
        rejected = [d for d in results if d["status"] == 429]
        assert rejected, "saturation produced no 429s"
        for d in rejected:
            assert d["retry_after"] >= 1.0
            assert d["reason"] in ("queue_full", "shed", "rate_limited")
        answered = [d for d in results if d["status"] == 200]
        verdicts = {d["verdict"] for d in answered}
        assert "proved" in verdicts       # the gated NORMAL solve
        assert "exhausted" in verdicts    # degraded fast UNKNOWNs
        # The bounded queue never grew past Q.
        assert service.admission.max_queued <= Q
    finally:
        gate.set()
        server.stop_background()


def test_client_retries_rejects_until_admitted(tmp_path):
    """The client helper turns a transient reject into a late answer."""
    service = make_service(tmp_path, solve_fn=proved_fn, queue_limit=1)
    service.admission.draining = True  # reject everything for now
    server = ReproServer(service)
    server.start_background()
    sleeps: list[float] = []

    def fake_sleep(seconds: float) -> None:
        sleeps.append(seconds)
        service.admission.draining = False  # "the drain ended"

    try:
        client = ServiceClient(port=server.port, timeout=10.0,
                               max_retries=3, sleep=fake_sleep)
        doc = client.analyze(variant(1))
        assert doc["status"] == 200 and doc["verdict"] == "proved"
        assert sleeps and sleeps[0] >= 1.0  # honored Retry-After
    finally:
        service.admission.draining = False
        server.stop_background()


def test_client_raises_after_retry_budget(tmp_path):
    service = make_service(tmp_path, solve_fn=proved_fn)
    service.admission.draining = True
    server = ReproServer(service)
    server.start_background()
    try:
        client = ServiceClient(port=server.port, timeout=10.0,
                               max_retries=1, sleep=lambda s: None)
        with pytest.raises(ServiceUnavailable) as err:
            client.analyze(variant(1))
        assert err.value.last is not None
        assert err.value.last["reason"] == "draining"
    finally:
        service.admission.draining = False
        server.stop_background()


# ----- HTTP hygiene ---------------------------------------------------------


def test_slow_client_gets_408_not_a_held_worker(tmp_path):
    service = make_service(tmp_path, solve_fn=proved_fn,
                           read_timeout=0.3)
    server = ReproServer(service)
    server.start_background()
    try:
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=10.0)
        try:
            sock.sendall(b"POST /v1/analyze HTTP/1.1\r\n")  # ...and stall
            data = sock.recv(4096)
            assert b"408" in data.split(b"\r\n", 1)[0]
        finally:
            sock.close()
        # The stalled connection cost nothing: the service still answers.
        doc = ServiceClient(port=server.port, timeout=10.0).analyze(
            variant(1), retry=False)
        assert doc["status"] == 200
    finally:
        server.stop_background()


def test_slow_client_chaos_delays_but_answers(tmp_path):
    service = make_service(tmp_path, solve_fn=proved_fn,
                           read_timeout=5.0)
    server = ReproServer(service)
    server.start_background()
    try:
        with inject_faults(seed=3, slow_client_rate=1.0,
                           slow_client_seconds=0.01) as monkey:
            doc = ServiceClient(port=server.port, timeout=10.0).analyze(
                variant(2), retry=False)
        assert doc["status"] == 200
        assert monkey.log.slow_clients >= 1
    finally:
        server.stop_background()


def test_http_surface(tmp_path):
    service = make_service(tmp_path, solve_fn=proved_fn)
    server = ReproServer(service)
    server.start_background()
    try:
        client = ServiceClient(port=server.port, timeout=10.0)
        health = client.health()
        assert health["status"] == 200 and health["state"] == "ok"
        ready = client.ready()
        assert ready["status"] == 200 and ready["ready"] is True
        client.analyze(variant(1), retry=False)  # populate the gauges
        metrics = client.metrics()
        assert "# HELP repro_serve_requests_total " in metrics
        assert "# TYPE repro_serve_requests_total counter" in metrics
        assert "# HELP repro_serve_queue_depth " in metrics
        assert "# TYPE repro_serve_queue_depth gauge" in metrics
        missing = client.job("no-such-job")
        assert missing["status"] == 404
        raw = client.request("GET", "/nowhere", retry=False)
        assert raw["status"] == 404
    finally:
        server.stop_background()
        # After drain, readiness flips (the socket is gone, but the
        # service object tells the same story).
        status, body = service.ready()
        assert status == 503 and body["draining"] is True


# ----- drain + resume (subprocess, real SIGTERM) ----------------------------


def _repro(args, *, extra_env=None, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=timeout,
        start_new_session=True,
    )


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.mark.slow
def test_sigterm_drain_journals_backlog_for_resume(tmp_path):
    """SIGTERM a live server mid-burst: every connection gets a
    terminal answer, the backlog journals, and ``repro batch resume``
    completes it to the expected verdicts."""
    spool = str(tmp_path / "spool")
    port = _free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--spool", spool,
         "--workers", "1", "--queue-limit", "4"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, start_new_session=True,
    )
    client = ServiceClient(port=port, timeout=60.0)
    try:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                if client.health()["status"] == 200:
                    break
            except ServiceUnavailable:
                time.sleep(0.05)
        else:
            pytest.fail(f"server never came up: {proc.stderr}")

        results: list[dict] = []
        lock = threading.Lock()

        def one(i: int) -> None:
            try:
                doc = client.analyze(variant(i), steps=3, retry=False)
            except Exception as exc:  # noqa: BLE001
                doc = {"status": "error", "error": repr(exc)}
            with lock:
                results.append(doc)

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.15)  # let requests reach admission / the worker
        os.kill(proc.pid, signal.SIGTERM)
        for t in threads:
            t.join(60.0)
        stdout, stderr = proc.communicate(timeout=60.0)
        assert proc.returncode == 0, stderr
        assert "drained:" in stderr

        # Terminal answers only: verdicts or drain rejects, no drops.
        assert len(results) == 3
        for doc in results:
            assert doc["status"] in (200, 503), doc

        # Whatever was journaled must resume to the expected verdict.
        status_out = _repro(["batch", "status", "--json", spool])
        assert status_out.returncode == 0, status_out.stderr
        table = json.loads(status_out.stdout)
        if table["jobs"]:
            resume = _repro(["batch", "resume", spool])
            assert resume.returncode == 0, (
                resume.stdout + resume.stderr)
            final = json.loads(
                _repro(["batch", "status", "--json", spool]).stdout)
            assert set(final["counts"]) == {"done"}
            for job in final["jobs"]:
                assert job["state"] == "done"
                assert job["verdict"] == "proved"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30.0)


def test_batch_status_json_reports_orphans(tmp_path):
    """`repro batch status --json` is machine-readable and shows
    interrupted (journaled-running) jobs as ``orphaned``."""
    from repro.persist.batch import BatchRunner

    spool = tmp_path / "spool"
    with BatchRunner(spool) as runner:
        rec = runner.submit_one(SRC, steps=2)
        runner.mark_running(rec)  # ...then "the process dies"

    out = _repro(["batch", "status", "--json", str(spool)])
    assert out.returncode == 0, out.stderr
    table = json.loads(out.stdout)
    assert table["counts"] == {"orphaned": 1}
    assert table["jobs"][0]["state"] == "orphaned"
    assert table["recovered"] == 1
    # The human rendering says it too.
    human = _repro(["batch", "status", str(spool)])
    assert "orphaned (interrupted while running)" in human.stdout
