"""End-to-end distributed tracing and live solver introspection.

The observability tentpole's integration surface:

* one trace id from a :class:`ServiceClient` submission through the
  serve request path, the journal, and the portfolio workers;
* **crash/resume continuity** — a server SIGKILLed mid-solve leaves
  the traceparent in the journal, and ``repro batch resume`` in a
  *different* process re-adopts it, so the resumed spans join the
  original trace;
* the :class:`~repro.obs.progress.SolveProgress` beacon: CDCL emits
  samples every N conflicts, they land in the service's per-job ring
  buffer (``GET /v1/jobs/<id>/progress``) and in the on-disk mirrors
  ``repro top`` reads;
* the ``repro top`` renderer in both modes (serve endpoint and
  detached spool directory).
"""

import asyncio
import io
import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.analysis.result import AnalysisOutcome, Verdict
from repro.obs import (
    BEACON,
    TRACER,
    make_traceparent,
    parse_traceparent,
    span_tree,
)
from repro.persist.batch import BatchRunner
from repro.serve import AnalysisService, ServeConfig

SRC = """
prog(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
  assert(backlog-p(ob) >= 0);
}
"""

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """These tests share the process-wide TRACER/METRICS/BEACON."""
    obs.reset()
    obs.disable()
    BEACON.disable()
    yield
    obs.reset()
    obs.disable()
    BEACON.disable()


def proved_fn(rec, budget, escalation):
    return AnalysisOutcome(verdict=Verdict.PROVED)


def make_service(tmp_path, *, solve_fn=proved_fn, **cfg_kwargs):
    cfg = ServeConfig(
        port=0, spool_dir=tmp_path / "spool", workers=1, **cfg_kwargs)
    return AnalysisService(cfg, solve_fn=solve_fn)


def _payload(label=None):
    doc = {"source": SRC, "backend": "smt", "steps": 3,
           "consts": {}}
    if label:
        doc["label"] = label
    return doc


def _tree_names(nodes):
    out = []
    for node in nodes:
        out.append(node["name"])
        out.extend(_tree_names(node.get("children", ())))
    return out


# ----- serve: request path, trace + progress endpoints -----------------------


class TestServeTracing:
    def test_request_joins_caller_trace_and_trace_endpoint_stitches(
            self, tmp_path):
        def solve_fn(rec, budget, escalation):
            BEACON.emit({
                "conflicts": 100, "decisions": 250, "propagations": 9000,
                "restarts": 2, "learnt": 40, "trail": 7, "num_vars": 64,
                "conflicts_per_s": 50.0, "props_per_s": 4500.0,
            })
            return AnalysisOutcome(verdict=Verdict.PROVED)

        service = make_service(tmp_path, solve_fn=solve_fn)
        tp = make_traceparent()
        trace_id, client_span = parse_traceparent(tp)
        status, body = asyncio.run(
            service.analyze(_payload(), traceparent=tp))
        assert status == 200 and body["verdict"] == "proved"
        assert body["trace_id"] == trace_id
        job_id = body["job_id"]

        # The journaled record carries the trace for a later resume.
        jobs, _ = service.runner.load()
        assert jobs[job_id].trace_id == trace_id

        status, doc = service.job_trace(job_id)
        assert status == 200
        assert doc["trace_id"] == trace_id
        names = _tree_names(doc["spans"])
        for expected in ("serve-request", "serve-admission",
                         "journal-submit", "solve-job"):
            assert expected in names, names
        # serve-request is a root here (its parent lives in the caller's
        # process) and is parented on the caller's span id.
        roots = [n["name"] for n in doc["spans"]]
        assert "serve-request" in roots
        req = next(n for n in doc["spans"] if n["name"] == "serve-request")
        assert req["parent_id"] == client_span

        status, doc = service.job_progress(job_id)
        assert status == 200 and doc["state"] == "done"
        assert doc["latest"]["job"] == job_id
        assert doc["latest"]["conflicts"] == 100
        assert len(doc["samples"]) == 1

        status, doc = service.jobs_index()
        assert status == 200
        row = next(r for r in doc["jobs"] if r["job_id"] == job_id)
        assert row["trace_id"] == trace_id
        assert row["progress"]["conflicts"] == 100

        # The beacon mirror is on disk for a detached `repro top`.
        mirror = tmp_path / "spool" / "progress" / f"{job_id}.json"
        assert mirror.exists()
        assert json.loads(mirror.read_text())["latest"]["conflicts"] == 100

    def test_trace_and_progress_404_for_unknown_job(self, tmp_path):
        service = make_service(tmp_path)
        assert service.job_trace("nope")[0] == 404
        assert service.job_progress("nope")[0] == 404

    def test_minted_trace_when_client_sends_none(self, tmp_path):
        service = make_service(tmp_path)
        status, body = asyncio.run(service.analyze(_payload()))
        assert status == 200
        assert len(body["trace_id"]) == 32

    def test_http_layer_routes_trace_and_progress(self, tmp_path):
        from repro.client import ServiceClient
        from repro.serve import ReproServer

        service = make_service(tmp_path)
        server = ReproServer(service)
        server.start_background()
        try:
            client = ServiceClient(port=server.port, timeout=10)
            body = client.analyze(SRC, steps=3,
                                  retry=False)
            assert body["status"] == 200
            tid = parse_traceparent(client.last_traceparent)[0]
            assert body["trace_id"] == tid
            job_id = body["job_id"]
            doc = client.job_trace(job_id)
            assert doc["status"] == 200 and doc["trace_id"] == tid
            assert "serve-request" in _tree_names(doc["spans"])
            doc = client.job_progress(job_id)
            assert doc["status"] == 200 and doc["job_id"] == job_id
            index = client.jobs()
            assert index["status"] == 200
            assert any(r["job_id"] == job_id for r in index["jobs"])
        finally:
            server.stop_background()
            service.runner.close()


# ----- CDCL beacon emission --------------------------------------------------


def _pigeonhole_cnf(holes):
    """PHP(holes+1, holes): deterministically UNSAT with real conflicts."""
    pigeons = holes + 1

    def var(p, h):
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


class TestSolveProgressBeacon:
    def test_cdcl_emits_samples_at_the_configured_interval(self):
        from repro.smt.sat.cdcl import CDCLSolver, SatResult

        num_vars, clauses = _pigeonhole_cnf(6)
        samples = []
        with BEACON.routed(samples.append, interval=10):
            solver = CDCLSolver(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            assert solver.solve() is SatResult.UNSAT
        assert samples, "an UNSAT pigeonhole solve must emit beacons"
        conflicts = [s["conflicts"] for s in samples]
        assert conflicts == sorted(conflicts)
        first = samples[0]
        for key in ("conflicts", "decisions", "propagations", "restarts",
                    "learnt", "trail", "num_vars", "conflicts_per_s",
                    "props_per_s", "ts", "job", "phase"):
            assert key in first, key
        assert first["num_vars"] == num_vars
        assert first["conflicts"] >= 10

    def test_disabled_beacon_emits_nothing(self):
        from repro.smt.sat.cdcl import CDCLSolver, SatResult

        num_vars, clauses = _pigeonhole_cnf(5)
        samples = []
        BEACON.disable()
        solver = CDCLSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is SatResult.UNSAT
        assert samples == []

    def test_phase_context_rides_along(self):
        from repro.obs import phase_scope, progress_scope
        from repro.smt.sat.cdcl import CDCLSolver, SatResult

        num_vars, clauses = _pigeonhole_cnf(6)
        samples = []
        with BEACON.routed(samples.append, interval=10), \
                progress_scope("job-xyz"), phase_scope(vc="asserts", rung=1):
            solver = CDCLSolver(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            assert solver.solve() is SatResult.UNSAT
        assert samples
        assert samples[0]["job"] == "job-xyz"
        assert samples[0]["phase"] == {"vc": "asserts", "rung": 1}


# ----- worker re-parenting under the parallel portfolio ----------------------


class TestWorkerReparenting:
    def test_worker_spans_join_the_dispatching_trace(self, monkeypatch):
        import repro

        monkeypatch.setenv("REPRO_JOBS", "2")
        outcome = repro.analyze(
            SRC, steps=3, telemetry=True, cache=False)
        snap = outcome.telemetry
        main_pid = os.getpid()
        worker_spans = [s for s in snap.spans if s["pid"] != main_pid]
        assert worker_spans, "REPRO_JOBS=2 must produce worker spans"
        trace_ids = {s["trace_id"] for s in snap.spans if s["trace_id"]}
        assert len(trace_ids) == 1, (
            f"one analysis must be one trace, got {trace_ids}")
        # Worker roots parent under a span that exists in the main
        # process — the cross-process stitch Perfetto renders.
        main_ids = {s["span_id"] for s in snap.spans
                    if s["pid"] == main_pid}
        worker_ids = {s["span_id"] for s in worker_spans}
        worker_roots = [s for s in worker_spans
                        if s["parent_id"] not in worker_ids]
        assert worker_roots
        for root in worker_roots:
            assert root["parent_id"] in main_ids


# ----- crash/resume trace continuity -----------------------------------------


_SERVER_SCRIPT = """
import sys, time
from pathlib import Path

from repro.analysis.result import AnalysisOutcome, Verdict
from repro.serve import AnalysisService, ReproServer, ServeConfig

spool, portfile, marker = sys.argv[1], Path(sys.argv[2]), Path(sys.argv[3])

def solve_fn(rec, budget, escalation):
    marker.write_text("started")
    time.sleep(600)  # hold the solve until SIGKILL
    return AnalysisOutcome(verdict=Verdict.PROVED)

service = AnalysisService(
    ServeConfig(port=0, spool_dir=spool, workers=1), solve_fn=solve_fn)
server = ReproServer(service)
server.start_background()
portfile.write_text(str(server.port))
time.sleep(600)
"""


def _wait_for(predicate, timeout=30.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


class TestCrashResumeContinuity:
    def test_one_trace_id_spans_submit_sigkill_and_resume(self, tmp_path):
        """Submit via ServiceClient, SIGKILL the server mid-solve, then
        ``batch resume`` in *this* process: the journaled traceparent
        stitches all three into one trace."""
        from repro.client import ServiceClient

        spool = tmp_path / "spool"
        portfile = tmp_path / "port"
        marker = tmp_path / "started"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", textwrap.dedent(_SERVER_SCRIPT),
             str(spool), str(portfile), str(marker)],
            env=env, cwd=str(tmp_path), start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            _wait_for(lambda: portfile.exists() and portfile.read_text(),
                      what="server port")
            client = ServiceClient(
                port=int(portfile.read_text()), timeout=120)
            submitter = threading.Thread(
                target=lambda: _swallow(
                    lambda: client.analyze(SRC, steps=3,
                                           retry=False)),
                daemon=True,
            )
            submitter.start()
            _wait_for(marker.exists, what="solve to start")
            # The machine dies mid-solve.
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            submitter.join(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                os.killpg(proc.pid, signal.SIGKILL)

        assert client.last_traceparent is not None
        trace_id, _client_span = parse_traceparent(client.last_traceparent)

        # The dead server journaled the submission with its trace.
        obs.enable()
        with BatchRunner(spool, executor=proved_fn_record) as runner:
            jobs, _ = runner.load()
            (rec,) = jobs.values()
            assert rec.trace_id == trace_id
            assert rec.state == "running"  # orphaned mid-solve
            journal_span = parse_traceparent(rec.trace)[1]
            report = runner.run(resume=True)
        assert report.recovered == 1
        assert report.records[0].state == "done"

        # The resumed batch-job span continues the ORIGINAL trace,
        # parented on the span that journaled the submission.
        batch_spans = [r for r in TRACER.records if r.name == "batch-job"]
        assert len(batch_spans) == 1
        span = batch_spans[0]
        assert span.trace_id == trace_id
        assert span.parent_id == journal_span
        assert span.attrs["resumed"] is True

        # And the journaled row exposes the trace id for `repro top`
        # / `batch status --json` consumers.
        row = runner.status().to_json()["jobs"][0]
        assert row["trace_id"] == trace_id


def proved_fn_record(rec):
    return AnalysisOutcome(verdict=Verdict.PROVED)


def _swallow(fn):
    try:
        fn()
    except Exception:
        pass  # the server died under this request, by design


# ----- repro top -------------------------------------------------------------


class TestReproTop:
    def test_dir_mode_renders_jobs_and_progress(self, tmp_path):
        from repro.obs import progress_scope
        from repro.top import run_top

        spool = tmp_path / "spool"
        with BatchRunner(spool, executor=proved_fn_record) as runner:
            runner.submit([("demo", SRC)], steps=3)
            report = runner.run()
        assert report.executed == 1
        # Mirror a beacon sample the way a live run would.
        from repro.obs import ProgressBook

        book = ProgressBook(spool / "progress")
        job_id = report.records[0].job_id
        with BEACON.routed(book.record), progress_scope(job_id):
            BEACON.emit({"conflicts": 1234, "decisions": 5, "restarts": 0,
                         "propagations": 99, "learnt": 3, "trail": 2,
                         "num_vars": 8, "conflicts_per_s": 1.0,
                         "props_per_s": 2.0})
        out = io.StringIO()
        assert run_top(str(spool), once=True, out=out) == 0
        frame = out.getvalue()
        assert "repro top" in frame and "demo" in frame
        assert "done" in frame and "proved" in frame
        assert "cfl 1234" in frame  # the beacon sample made the frame

    def test_serve_mode_renders_health_and_jobs(self, tmp_path):
        from repro.serve import ReproServer
        from repro.top import run_top

        service = make_service(tmp_path)
        server = ReproServer(service)
        server.start_background()
        try:
            status, body = asyncio.run(
                service.analyze(_payload(label="served-job")))
            assert status == 200
            out = io.StringIO()
            rc = run_top(f"127.0.0.1:{server.port}", once=True, out=out)
            assert rc == 0
            frame = out.getvalue()
            assert "serve http://127.0.0.1" in frame
            assert "served-job" in frame and "done" in frame
        finally:
            server.stop_background()
            service.runner.close()

    def test_bad_target_is_a_usage_error(self, tmp_path):
        from repro.top import run_top

        assert run_top(str(tmp_path / "missing"), once=True,
                       out=io.StringIO()) == 4

    def test_cli_top_once_subprocess(self, tmp_path):
        spool = tmp_path / "spool"
        with BatchRunner(spool, executor=proved_fn_record) as runner:
            runner.submit([("cli-demo", SRC)], steps=3)
            runner.run()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "top", str(spool), "--once"],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "cli-demo" in proc.stdout and "done" in proc.stdout
