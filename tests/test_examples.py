"""Smoke tests: the example scripts must run end to end.

The fast examples run in-process on every test invocation; the two
case-study walkthroughs (several solver minutes) are marked slow:

    pytest tests/test_examples.py -m slow
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("name", [
    "quickstart",
    "buffer_precision",
    "invariant_synthesis",
])
def test_fast_examples(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out  # every example narrates its steps


@pytest.mark.slow
@pytest.mark.parametrize("name", [
    "multi_backend",
    "fq_starvation",
    "ccac_ackburst",
])
def test_slow_examples(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out
