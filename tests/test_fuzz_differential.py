"""Fuzzing: random Buffy programs, interpreter vs symbolic encoding.

A seeded generator builds random (but well-typed, bounded) Buffy
programs with the builder API — moves, list ops, conditionals over
backlogs and globals, loops, monitor updates.  Each program runs
concretely on a random workload; the symbolic encoding with pinned
arrivals must then *prove* it produces identical statistics and
monitor values.  Any divergence between the two semantics — parser,
checker, interpreter, buffer models, symbolic executor, bit-blaster or
SAT solver — fails the test.
"""

import random

import pytest

from repro.backends.smt_backend import SmtBackend, Status
from repro.buffers.packets import Packet
from repro.compiler.symexec import EncodeConfig
from repro.lang.builder import ProgramBuilder
from repro.lang.interp import Interpreter

CONFIG = EncodeConfig(buffer_capacity=4, arrivals_per_step=2)
HORIZON = 3
N_INPUTS = 2


def generate_program(rng: random.Random):
    """A random well-typed program over 2 input buffers and 1 output."""
    b = ProgramBuilder(f"fuzz{rng.randint(0, 1 << 30)}")
    ibs = b.in_buffers("ibs", N_INPUTS)
    ob = b.out_buffer("ob")
    g = b.global_int("g")
    flag = b.global_bool("flag")
    lst = b.global_list("lst", capacity=3)
    mon = b.monitor_int("mon")
    x = b.local_int("x")

    def rand_scalar(depth=1):
        choice = rng.randrange(6)
        if choice == 0:
            return b.int(rng.randint(0, 3))
        if choice == 1:
            return g
        if choice == 2:
            return x
        if choice == 3:
            return b.backlog_p(ibs[rng.randrange(N_INPUTS)])
        if choice == 4 and depth > 0:
            return rand_scalar(depth - 1) + rand_scalar(depth - 1)
        return lst.len()

    def rand_cond():
        choice = rng.randrange(5)
        if choice == 0:
            return rand_scalar() > rand_scalar()
        if choice == 1:
            return rand_scalar().eq(rand_scalar())
        if choice == 2:
            return flag
        if choice == 3:
            return lst.empty()
        return lst.has(b.int(rng.randint(0, 2)))

    def emit_command(depth):
        choice = rng.randrange(8)
        if choice == 0:
            b.assign(x, rand_scalar())
            with b.if_(x > 8):
                b.assign(x, 0)
            with b.if_(x < 0):
                b.assign(x, 1)
        elif choice == 1:
            b.assign(g, rand_scalar())
            # Keep globals bounded so bit-widths stay small.
            with b.if_(g > 6):
                b.assign(g, 0)
            with b.if_(g < 0):
                b.assign(g, 0)
        elif choice == 2:
            b.assign(flag, rand_cond())
        elif choice == 3:
            b.move_p(ibs[rng.randrange(N_INPUTS)], ob,
                     b.int(rng.randint(0, 2)))
        elif choice == 4:
            b.push_back(lst, b.int(rng.randint(0, 2)))
        elif choice == 5:
            b.pop_front(x, lst)
        elif choice == 6 and depth > 0:
            with b.if_(rand_cond()):
                for _ in range(rng.randint(1, 2)):
                    emit_command(depth - 1)
        elif choice == 7 and depth > 0:
            var = f"i{rng.randint(0, 99)}"
            with b.for_(var, 0, rng.randint(1, 2)):
                emit_command(depth - 1)
        else:
            b.assign(x, rand_scalar())

    for _ in range(rng.randint(4, 9)):
        emit_command(depth=2)
    # Monitors are ghost state: they may read anything but cannot drive
    # control flow, so snapshot a bounded expression instead of clamping.
    b.assign(mon, rand_scalar())
    # Guarantee at least one move so the program touches its buffers.
    b.move_p(ibs[0], ob, 1)
    return b.build()


def random_arrivals(rng: random.Random):
    out = []
    for _ in range(HORIZON):
        step = {}
        for q in range(N_INPUTS):
            n = rng.randint(0, CONFIG.arrivals_per_step)
            if n:
                step[f"ibs[{q}]"] = [Packet(flow=q) for _ in range(n)]
        out.append(step)
    return out


@pytest.mark.parametrize("seed", range(40))
def test_random_program_differential(seed):
    rng = random.Random(seed)
    checked = generate_program(rng)
    workload = random_arrivals(rng)

    interp = Interpreter(checked, buffer_capacity=CONFIG.buffer_capacity)
    trace = interp.run(workload)

    backend = SmtBackend(checked, steps=HORIZON, config=CONFIG)
    from repro.smt.terms import mk_and, mk_bool, mk_eq, mk_int, mk_not

    pins = []
    for av in backend.machine.arrival_vars:
        count = len(workload[av.step].get(av.buffer, []))
        pins.append(mk_eq(av.present, mk_bool(av.slot < count)))

    agree = []
    for q in range(N_INPUTS):
        label = f"ibs[{q}]"
        buf = interp.buffer("ibs", q)
        agree.append(mk_eq(backend.deq_count(label),
                           mk_int(buf.stats.dequeued_packets)))
        agree.append(mk_eq(backend.backlog(label),
                           mk_int(buf.backlog_p())))
    ob = interp.buffer("ob")
    agree.append(mk_eq(backend.enq_count("ob"),
                       mk_int(ob.stats.enqueued_packets)))
    agree.append(mk_eq(backend.drop_count("ob"),
                       mk_int(ob.stats.dropped_packets)))
    for t in range(HORIZON):
        agree.append(mk_eq(backend.monitor("mon", t),
                           mk_int(trace.steps[t].monitors["mon"])))

    result = backend.find_trace(mk_not(mk_and(*agree)),
                                extra_assumptions=pins)
    assert result.status is Status.UNSATISFIABLE, (
        f"seed {seed}: symbolic and concrete semantics diverge for\n"
        f"{_render(checked)}"
    )


def _render(checked) -> str:
    from repro.lang.pretty import pretty_program

    return pretty_program(checked.program)
