"""The durability layer: journal, checkpoints, batch queue, io_error chaos.

Crash *recovery* end-to-end (SIGKILL a real ``repro batch run``, resume
it, compare verdicts) lives in test_batch_recovery.py; this module
covers the pieces in-process, including the hypothesis round-trip
properties for journal records and CDCL checkpoints.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.result import EXIT_DEADLETTER, Verdict
from repro.persist.batch import BatchRunner, analyze_many, job_id_for
from repro.persist.checkpoint import (
    CheckpointStore,
    cnf_fingerprint,
    resolve_checkpoints,
)
from repro.persist.journal import (
    Journal,
    canonical_json,
    frame_record,
    load_snapshot,
    payload_checksum,
    write_snapshot,
)
from repro.runtime.budget import SolverFault
from repro.runtime.chaos import inject_faults
from repro.smt.cnf import CNF
from repro.smt.sat.cdcl import CDCLConfig, CDCLSolver, SatResult
from repro.smt.solver import CheckResult, SmtSolver
from repro.smt.terms import mk_bool_var, mk_not, mk_or
from repro.trust import ProofLog


def pigeonhole(pigeons: int, holes: int) -> CNF:
    """PHP(p, h): hard UNSAT for p > h, the canonical resume workload."""
    cnf = CNF()
    var = {
        (p, h): cnf.new_var()
        for p in range(pigeons) for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


SRC = """
prog(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
  assert(backlog-p(ob) >= 0);
}
"""


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, fsync="always") as j:
            assert j.append({"kind": "a", "n": 1})
            assert j.append({"kind": "b", "xs": [1, 2, 3]})
            assert j.records_written == 2
            assert j.bytes_written > 0
        assert Journal(path).replay() == [
            {"kind": "a", "n": 1},
            {"kind": "b", "xs": [1, 2, 3]},
        ]

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Journal(tmp_path / "j.jsonl", fsync="sometimes")

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path, fsync="always") as j:
            j.append({"n": 1})
            j.append({"n": 2})
        good = path.read_bytes()
        # Simulate a write cut mid-record.
        path.write_bytes(good + b'{"l":17,"h":"dead')
        j2 = Journal(path)
        assert j2.replay() == [{"n": 1}, {"n": 2}]
        assert path.read_bytes() == good
        # The journal is usable again after truncation.
        assert j2.append({"n": 3})
        j2.close()
        assert Journal(path).replay() == [{"n": 1}, {"n": 2}, {"n": 3}]

    def test_corrupt_middle_record_ends_prefix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [frame_record({"n": 1}), frame_record({"n": 2})]
        # Flip a byte inside record 1's payload: checksum must catch it.
        bad = lines[0].replace('"n":1', '"n":7')
        path.write_text(bad + lines[1])
        assert Journal(path).replay() == []

    def test_unterminated_final_line_closed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(frame_record({"n": 1}).rstrip("\n"))
        j = Journal(path)
        assert j.replay() == [{"n": 1}]
        assert j.append({"n": 2})
        j.close()
        assert Journal(path).replay() == [{"n": 1}, {"n": 2}]

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal(tmp_path / "nope.jsonl").replay() == []

    def test_reset_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal(path, fsync="never")
        j.append({"n": 1})
        j.reset()
        assert j.replay() == []

    def test_io_error_chaos_degrades(self, tmp_path):
        j = Journal(tmp_path / "j.jsonl", fsync="always")
        with inject_faults(io_error_rate=1.0, seed=3) as monkey:
            assert j.append({"n": 1}) is False
        assert j.degraded
        assert monkey.log.io_errors == 1
        assert not (tmp_path / "j.jsonl").exists()
        # Out of chaos scope writes work again (degraded stays latched).
        assert j.append({"n": 2})
        assert j.degraded

    def test_frame_checksum_definition(self):
        payload = {"b": 2, "a": 1}
        doc = json.loads(frame_record(payload))
        assert doc["r"] == payload
        assert doc["l"] == len(canonical_json(payload))
        assert doc["h"] == payload_checksum(payload)


_payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(-1000, 1000), st.booleans(),
              st.text(max_size=12),
              st.lists(st.integers(-50, 50), max_size=4)),
    max_size=4,
)


class TestJournalProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(_payloads, max_size=6))
    def test_round_trip(self, tmp_path_factory, payloads):
        path = tmp_path_factory.mktemp("wal") / "j.jsonl"
        with Journal(path, fsync="never") as j:
            for p in payloads:
                assert j.append(p)
        assert Journal(path).replay() == payloads

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_payloads, min_size=1, max_size=5), st.data())
    def test_any_truncation_leaves_valid_prefix(self, tmp_path_factory,
                                                payloads, data):
        path = tmp_path_factory.mktemp("wal") / "j.jsonl"
        with Journal(path, fsync="never") as j:
            for p in payloads:
                j.append(p)
        raw = path.read_bytes()
        cut = data.draw(st.integers(0, len(raw)))
        path.write_bytes(raw[:cut])
        recovered = Journal(path).replay()
        assert recovered == payloads[: len(recovered)]
        # After truncation the file replays identically and accepts
        # appends — a torn tail can never poison later records.
        j2 = Journal(path, fsync="never")
        assert j2.replay() == recovered
        assert j2.append({"extra": 1})
        j2.close()
        assert Journal(path).replay() == recovered + [{"extra": 1}]


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snap.json"
        state = {"jobs": [{"id": "x", "state": "done"}]}
        assert write_snapshot(path, state)
        assert load_snapshot(path) == state

    def test_corrupt_is_a_miss_and_deleted(self, tmp_path):
        path = tmp_path / "snap.json"
        assert write_snapshot(path, {"n": 1})
        path.write_text(path.read_text()[:-4])
        assert load_snapshot(path) is None
        assert not path.exists()

    def test_io_error_chaos(self, tmp_path):
        with inject_faults(io_error_rate=1.0, seed=1):
            assert write_snapshot(tmp_path / "snap.json", {"n": 1}) is False
        assert load_snapshot(tmp_path / "snap.json") is None


# ---------------------------------------------------------------------------
# Checkpoint store
# ---------------------------------------------------------------------------


class TestCheckpointStore:
    def test_round_trip_and_discard(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.save("k1", {"format": 1, "x": [1, 2]})
        assert len(store) == 1
        assert store.load("k1") == {"format": 1, "x": [1, 2]}
        assert store.restores == 1
        store.discard("k1")
        assert len(store) == 0
        assert store.load("k1") is None

    def test_corrupt_checkpoint_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("k", {"a": 1})
        path = next(tmp_path.iterdir())
        path.write_text(path.read_text().replace('"a": 1', '"a": 2'))
        assert store.load("k") is None
        assert store.corrupt == 1
        assert len(store) == 0  # dropped so it cannot keep costing reads

    def test_io_error_chaos_on_save(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with inject_faults(io_error_rate=1.0, seed=2):
            assert store.save("k", {"a": 1}) is False
        assert store.io_errors == 1
        assert store.load("k") is None

    def test_kill_during_checkpoint_keeps_previous(self, tmp_path):
        """Dying between temp write and rename never tears a checkpoint."""
        store = CheckpointStore(tmp_path)
        assert store.save("k", {"v": "old"})
        store._kill_hook = lambda: (_ for _ in ()).throw(
            OSError("process died in the torn-save window"))
        with inject_faults(kill_checkpoint_rate=1.0, seed=0) as monkey:
            assert store.save("k", {"v": "new"}) is False
        assert monkey.log.checkpoint_kills == 1
        assert store.load("k") == {"v": "old"}
        assert len(store) == 1  # no stray temp file counted

    def test_resolve_checkpoints(self, tmp_path, monkeypatch):
        assert resolve_checkpoints(False) is None
        store = CheckpointStore(tmp_path)
        assert resolve_checkpoints(store) is store
        assert resolve_checkpoints(tmp_path).directory == tmp_path
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        assert resolve_checkpoints(None) is None
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "env"))
        resolved = resolve_checkpoints(None)
        assert resolved is not None
        assert resolved is resolve_checkpoints(None)  # cached per dir


# ---------------------------------------------------------------------------
# CDCL checkpoint / resume
# ---------------------------------------------------------------------------


def _load(cnf, config=None, proof=None):
    solver = CDCLSolver(cnf.num_vars, config, proof=proof)
    for clause in cnf.clauses:
        solver.add_clause(clause)
    return solver


class TestCDCLCheckpoint:
    def test_exhausted_solve_resumes_with_learnts(self, tmp_path):
        cnf = pigeonhole(7, 6)
        s1 = _load(cnf, CDCLConfig(max_conflicts=200))
        assert s1.solve() is SatResult.UNKNOWN
        state = s1.checkpoint_state()
        assert state["learnts"]

        store = CheckpointStore(tmp_path)
        key = cnf_fingerprint(cnf.num_vars, cnf.clauses)
        assert store.save(key, state)
        loaded = store.load(key)

        s2 = _load(cnf)
        restored = s2.restore_state(loaded)
        assert restored > 0
        assert s2.restored_learnts == restored
        assert s2.solve() is SatResult.UNSAT

        # The resume demonstrably reused prior work: it finishes in
        # fewer conflicts than an identical fresh solver.
        s3 = _load(cnf)
        assert s3.solve() is SatResult.UNSAT
        assert s2.stats.conflicts < s3.stats.conflicts

    def test_restart_position_survives(self):
        cnf = pigeonhole(7, 6)
        s1 = _load(cnf, CDCLConfig(max_conflicts=500))
        s1.solve()
        state = s1.checkpoint_state()
        assert state["restarts"] > 0
        s2 = _load(cnf)
        s2.restore_state(state)
        assert s2._restart_resume == state["restarts"]

    def test_restore_refuses_proof_logging_solver(self):
        cnf = pigeonhole(5, 4)
        s1 = _load(cnf, CDCLConfig(max_conflicts=20))
        s1.solve()
        state = s1.checkpoint_state()
        s2 = _load(cnf, proof=ProofLog())
        with pytest.raises(ValueError, match="proof-logging"):
            s2.restore_state(state)

    def test_restore_rejects_var_count_mismatch(self):
        cnf = pigeonhole(5, 4)
        s1 = _load(cnf, CDCLConfig(max_conflicts=20))
        s1.solve()
        state = s1.checkpoint_state()
        other = CDCLSolver(cnf.num_vars + 3)
        with pytest.raises(ValueError, match="vars"):
            other.restore_state(state)

    def test_restore_rejects_unknown_format(self):
        solver = CDCLSolver(2)
        with pytest.raises(ValueError, match="format"):
            solver.restore_state({"format": 99, "num_vars": 2})

    def test_sat_formula_unaffected_by_resume(self):
        cnf = pigeonhole(5, 5)  # satisfiable: 5 pigeons fit 5 holes
        s1 = _load(cnf, CDCLConfig(max_conflicts=3))
        first = s1.solve()
        state = s1.checkpoint_state()
        s2 = _load(cnf)
        s2.restore_state(state)
        assert s2.solve() is SatResult.SAT
        assert first in (SatResult.SAT, SatResult.UNKNOWN)


_clauses = st.lists(
    st.lists(
        st.integers(-6, 6).filter(lambda v: v != 0),
        min_size=1, max_size=3,
    ),
    min_size=1, max_size=24,
)


class TestCheckpointProperties:
    @settings(max_examples=40, deadline=None)
    @given(_clauses)
    def test_json_round_trip_preserves_state(self, clauses):
        s1 = CDCLSolver(6, CDCLConfig(max_conflicts=5))
        for clause in clauses:
            if not s1.add_clause(clause):
                break
        s1.solve()
        state = s1.checkpoint_state()
        # The on-disk envelope is JSON: the state must survive it bit-
        # for-bit (canonical encode -> decode == identity).
        assert json.loads(canonical_json(state)) == state

    @settings(max_examples=40, deadline=None)
    @given(_clauses)
    def test_resumed_verdict_matches_fresh_verdict(self, clauses):
        s1 = CDCLSolver(6, CDCLConfig(max_conflicts=5))
        ok = True
        for clause in clauses:
            if not s1.add_clause(clause):
                ok = False
                break
        if ok:
            s1.solve()
        state = json.loads(canonical_json(s1.checkpoint_state()))

        s2 = CDCLSolver(6)
        for clause in clauses:
            if not s2.add_clause(clause):
                break
        s2.restore_state(state)
        # Restored VSIDS activities and phases match the checkpoint.
        assert list(s2._activity[1:]) == state["activity"]
        assert [1 if p else 0 for p in s2._phase[1:]] == state["phase"]

        fresh = CDCLSolver(6)
        for clause in clauses:
            if not fresh.add_clause(clause):
                break
        assert s2.solve() is fresh.solve()


# ---------------------------------------------------------------------------
# SmtSolver wiring
# ---------------------------------------------------------------------------


def _php_terms(pigeons, holes):
    """Pigeonhole as SMT boolean terms (hard UNSAT for small caps)."""
    v = {
        (p, h): mk_bool_var(f"x_{p}_{h}")
        for p in range(pigeons) for h in range(holes)
    }
    formulas = [
        mk_or(*[v[(p, h)] for h in range(holes)]) for p in range(pigeons)
    ]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                formulas.append(mk_or(mk_not(v[(p1, h)]), mk_not(v[(p2, h)])))
    return formulas


class TestSolverCheckpointWiring:
    # certify=False is pinned throughout: SmtSolver(certify=None) defers
    # to REPRO_CERTIFY, and certified runs skip checkpointing by design
    # (a resumed solve could not replay the proof log), so these wiring
    # tests must hold the certify axis fixed to stay green on the
    # certified CI leg.

    def test_exhaust_save_then_resume(self, tmp_path):
        store = CheckpointStore(tmp_path)
        s1 = SmtSolver(
            sat_config=CDCLConfig(max_conflicts=150),
            parallelism=1, cache=False, checkpoints=store, certify=False,
        )
        s1.add(*_php_terms(7, 6))
        assert s1.check() is CheckResult.UNKNOWN
        assert store.saves == 1
        assert len(store) == 1

        s2 = SmtSolver(
            parallelism=1, cache=False, checkpoints=store, certify=False,
        )
        s2.add(*_php_terms(7, 6))
        assert s2.check() is CheckResult.UNSAT
        # The restore counter proves the resumed solve reused the
        # checkpointed learned clauses (the acceptance telemetry).
        assert s2.last_restored_learnts > 0
        assert store.restores == 1
        # A definitive answer spends the checkpoint.
        assert len(store) == 0

    def test_checkpoints_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        s = SmtSolver(
            sat_config=CDCLConfig(max_conflicts=50),
            parallelism=1, cache=False, certify=False,
        )
        s.add(*_php_terms(6, 5))
        assert s.check() is CheckResult.UNKNOWN
        assert s.last_restored_learnts == 0

    def test_env_dir_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        s = SmtSolver(
            sat_config=CDCLConfig(max_conflicts=150),
            parallelism=1, cache=False, certify=False,
        )
        s.add(*_php_terms(7, 6))
        assert s.check() is CheckResult.UNKNOWN
        assert any(tmp_path.iterdir())

    def test_certified_run_skips_checkpointing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        s1 = SmtSolver(
            sat_config=CDCLConfig(max_conflicts=150),
            parallelism=1, cache=False, checkpoints=store, certify=True,
        )
        s1.add(*_php_terms(7, 6))
        assert s1.check() is CheckResult.UNKNOWN
        assert store.saves == 0  # no save: its proof log could not resume

    def test_checkpoint_keyed_by_cnf(self, tmp_path):
        """A checkpoint for one formula never applies to another."""
        store = CheckpointStore(tmp_path)
        s1 = SmtSolver(
            sat_config=CDCLConfig(max_conflicts=150),
            parallelism=1, cache=False, checkpoints=store, certify=False,
        )
        s1.add(*_php_terms(7, 6))
        assert s1.check() is CheckResult.UNKNOWN

        s2 = SmtSolver(
            parallelism=1, cache=False, checkpoints=store, certify=False,
        )
        s2.add(*_php_terms(6, 5))  # different CNF -> different key
        assert s2.check() is CheckResult.UNSAT
        assert s2.last_restored_learnts == 0
        assert store.restores == 0


# ---------------------------------------------------------------------------
# Batch runner
# ---------------------------------------------------------------------------


def _proved(*_args):
    from repro.analysis.result import AnalysisOutcome

    return AnalysisOutcome(verdict=Verdict.PROVED)


class TestBatchRunner:
    def test_submit_is_idempotent(self, tmp_path):
        with BatchRunner(tmp_path) as runner:
            ids1 = runner.submit([SRC, ("other", SRC + "\n// v2")])
            ids2 = runner.submit([SRC])
        assert ids2 == [ids1[0]]
        with BatchRunner(tmp_path) as runner:
            assert len(runner.status().records) == 2

    def test_job_id_is_content_addressed(self):
        spec = {"source": SRC, "backend": "smt", "steps": 4,
                "consts": {}, "prove": False, "options": {}}
        assert job_id_for(spec) == job_id_for(dict(spec, label="x"))
        assert job_id_for(spec) != job_id_for(dict(spec, steps=5))

    def test_run_executes_and_replays(self, tmp_path):
        calls = []
        with BatchRunner(tmp_path, executor=lambda rec: calls.append(rec)
                         or _proved()) as runner:
            runner.submit([("a", SRC)])
            report = runner.run()
        assert [r.state for r in report.records] == ["done"]
        assert report.records[0].verdict == "proved"
        assert report.exit_code == 0
        assert len(calls) == 1
        # Second run: answered from the journal, nothing re-executes.
        with BatchRunner(tmp_path, executor=_proved) as runner:
            report2 = runner.run()
        assert report2.replayed == 1
        assert report2.executed == 0
        assert report2.outcomes()[0].verdict is Verdict.PROVED

    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        attempts = []
        delays = []

        def flaky(rec):
            attempts.append(rec.attempts)
            if len(attempts) < 3:
                raise SolverFault("transient")
            return _proved()

        with BatchRunner(tmp_path, max_attempts=5, seed=7,
                         executor=flaky, sleep=delays.append) as runner:
            runner.submit([SRC])
            report = runner.run()
        assert attempts == [1, 2, 3]
        assert report.retries == 2
        assert report.records[0].state == "done"
        assert len(delays) == 2
        assert delays[1] > delays[0]  # exponential backoff

    def test_deadletter_after_max_attempts(self, tmp_path):
        def always_fails(rec):
            raise OSError("disk on fire")

        with BatchRunner(tmp_path, max_attempts=2, executor=always_fails,
                         sleep=lambda _s: None) as runner:
            runner.submit([SRC])
            report = runner.run()
        rec = report.records[0]
        assert rec.state == "deadletter"
        assert rec.attempts == 2
        assert "disk on fire" in rec.error
        assert report.exit_code == EXIT_DEADLETTER

    def test_permanent_error_deadletters_immediately(self, tmp_path):
        def bad_program(rec):
            raise ValueError("parse error")

        with BatchRunner(tmp_path, max_attempts=5,
                         executor=bad_program) as runner:
            runner.submit([SRC])
            report = runner.run()
        assert report.records[0].state == "deadletter"
        assert report.records[0].attempts == 1

    def test_orphaned_running_job_is_requeued(self, tmp_path):
        """A job left 'running' by a dead process re-executes on resume."""
        with BatchRunner(tmp_path) as runner:
            (job_id,) = runner.submit([SRC])
            # Journal the transition a crashed process would leave behind.
            runner.journal.append({
                "kind": "state", "id": job_id, "state": "running",
                "attempt": 1,
            })
        status = BatchRunner(tmp_path).status()
        assert status.records[0].state == "running"
        with BatchRunner(tmp_path, executor=_proved) as runner:
            report = runner.run(resume=True)
        assert report.recovered == 1
        assert report.records[0].state == "done"
        assert report.records[0].recovered

    def test_resume_requires_a_journal(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            BatchRunner(tmp_path / "missing").run(resume=True)

    def test_compaction_preserves_state(self, tmp_path):
        with BatchRunner(tmp_path, executor=_proved,
                         compact_after_bytes=64) as runner:
            runner.submit([("a", SRC), ("b", SRC + "\n// b")])
            runner.run()  # journal > 64 bytes -> compacts into snapshot
        assert (tmp_path / BatchRunner.SNAPSHOT).exists()
        assert (tmp_path / BatchRunner.JOURNAL).stat().st_size == 0
        report = BatchRunner(tmp_path).status()
        assert sorted(r.state for r in report.records) == ["done", "done"]
        assert [r.verdict for r in report.records] == ["proved", "proved"]

    def test_real_execution_shares_result_cache(self, tmp_path):
        with BatchRunner(tmp_path) as runner:
            runner.submit([SRC], steps=2)
            report = runner.run()
        assert report.records[0].verdict == "proved"
        assert runner.cache.stats.stores > 0
        assert any((tmp_path / "cache").rglob("*.json"))


class TestAnalyzeMany:
    def test_plain_loop_without_journal(self):
        outcomes = analyze_many([SRC], steps=2)
        assert [o.verdict for o in outcomes] == [Verdict.PROVED]

    def test_durable_run_and_replay(self, tmp_path):
        outcomes = analyze_many([SRC], steps=2, journal_dir=tmp_path)
        assert outcomes[0].verdict is Verdict.PROVED
        # Same directory again: the verdict replays from the journal.
        again = analyze_many([SRC], steps=2, journal_dir=tmp_path)
        assert again[0].verdict is Verdict.PROVED
        assert again[0].stats.get("attempts") == 1

    def test_facade_and_top_level_exports(self):
        import repro

        assert repro.analyze_many is not None
        assert repro.EXIT_DEADLETTER == 6
        assert {"BatchRunner", "CheckpointStore", "Journal"} <= set(
            repro.__all__)


# ---------------------------------------------------------------------------
# io_error chaos across the stack
# ---------------------------------------------------------------------------


class TestIoErrorChaos:
    def test_cache_write_degrades_to_metric(self, tmp_path):
        from repro.engine.cache import CacheEntry, ResultCache

        cache = ResultCache(disk_dir=tmp_path)
        with inject_faults(io_error_rate=1.0, seed=5) as monkey:
            cache.put("k" * 64, CacheEntry(verdict="unsat"))
        assert monkey.log.io_errors == 1
        assert cache.stats.io_errors == 1
        # In-memory tier still answers; disk has nothing.
        assert cache.get("k" * 64) is not None
        assert not any(tmp_path.rglob("*.json"))

    def test_exporters_degrade_to_false(self, tmp_path):
        from repro.obs.export import TelemetrySnapshot

        snap = TelemetrySnapshot()
        target = tmp_path / "out.json"
        with inject_faults(io_error_rate=1.0, seed=5):
            assert snap.write_chrome_trace(str(target)) is False
            assert snap.write_jsonl(str(target)) is False
            assert snap.write_prometheus(str(target)) is False
        assert not target.exists()
        assert not list(tmp_path.iterdir())  # no stray temp files
        assert snap.write_prometheus(str(target)) is True
        assert target.exists()

    def test_analysis_survives_io_errors(self, tmp_path):
        """Journal + cache + checkpoint writes all failing never changes
        the verdict — durability degrades, correctness does not."""
        with inject_faults(io_error_rate=1.0, seed=9):
            outcomes = analyze_many([SRC], steps=2, journal_dir=tmp_path)
        assert outcomes[0].verdict is Verdict.PROVED

    def test_seeded_stream_is_deterministic(self, tmp_path):
        def run(tag, seed):
            j = Journal(tmp_path / f"j{tag}.jsonl")
            with inject_faults(io_error_rate=0.5, seed=seed):
                survived = [i for i in range(12) if j.append({"i": i})]
            j.close()
            return survived

        # Same seed -> the exact same appends fail; different seeds ->
        # a different (deterministic) failure pattern.
        assert run("a", 0) == run("b", 0) == [0, 1, 4, 6, 9, 10, 11]
        assert run("c", 1) == [1, 2, 6, 7, 10]
