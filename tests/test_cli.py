"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.netmodels.schedulers import PRIO_SRC, RR_SRC


@pytest.fixture
def prio_file(tmp_path):
    path = tmp_path / "prio.buffy"
    path.write_text(PRIO_SRC)
    return str(path)


@pytest.fixture
def asserting_file(tmp_path):
    src = """\
p(in buffer ib, out buffer ob){
  monitor int steps;
  steps = steps + 1;
  assert(steps <= LIMIT);
  move-p(ib, ob, 1);
}
"""
    path = tmp_path / "asserting.buffy"
    path.write_text(src)
    return str(path)


class TestCli:
    def test_check(self, prio_file, capsys):
        assert main(["check", prio_file, "-D", "N=2"]) == 0
        out = capsys.readouterr().out
        assert "prio: OK" in out

    def test_check_bad_program(self, tmp_path, capsys):
        path = tmp_path / "bad.buffy"
        path.write_text("p(in buffer ib, out buffer ob){ x = 1; }")
        assert main(["check", str(path)]) == 4
        assert "error" in capsys.readouterr().err

    def test_pretty_round_trips(self, prio_file, capsys, tmp_path):
        assert main(["pretty", prio_file, "-D", "N=2"]) == 0
        printed = capsys.readouterr().out
        again = tmp_path / "again.buffy"
        again.write_text(printed)
        assert main(["check", str(again)]) == 0

    def test_run(self, prio_file, capsys):
        assert main(["run", prio_file, "-D", "N=2", "--horizon", "5"]) == 0
        out = capsys.readouterr().out
        assert "simulated 5 steps" in out
        assert "ibs[0]" in out

    def test_verify_proved(self, asserting_file, capsys):
        assert main(["verify", asserting_file, "-D", "LIMIT=4",
                     "--horizon", "3"]) == 0
        assert "proved" in capsys.readouterr().out

    def test_verify_violated_prints_trace(self, asserting_file, capsys):
        assert main(["verify", asserting_file, "-D", "LIMIT=2",
                     "--horizon", "4"]) == 1
        out = capsys.readouterr().out
        assert "violated" in out
        assert "counterexample over 4 steps" in out

    def test_smtlib_dump_parses(self, prio_file, capsys):
        assert main(["smtlib", prio_file, "-D", "N=2",
                     "--horizon", "2"]) == 0
        text = capsys.readouterr().out
        from repro.smt.smtlib import parse_smtlib

        script = parse_smtlib(text)
        assert script.has_check_sat

    def test_loc(self, capsys):
        assert main(["loc"]) == 0
        assert "Fair-Queue" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.buffy"]) == 4

    def test_bad_define(self, prio_file):
        with pytest.raises(SystemExit):
            main(["check", prio_file, "-D", "N"])

    def test_verify_generous_timeout_still_proves(self, asserting_file, capsys):
        assert main(["verify", asserting_file, "-D", "LIMIT=4",
                     "--horizon", "3", "--timeout", "600"]) == 0
        assert "proved" in capsys.readouterr().out

    def test_verify_tiny_timeout_exits_3_with_report(self, asserting_file,
                                                     capsys):
        # 1 microsecond: the deadline passes during encoding, so the
        # run must stop early, exit 3, and print the resource report.
        assert main(["verify", asserting_file, "-D", "LIMIT=2",
                     "--horizon", "4", "--timeout", "1e-6"]) == 3
        out = capsys.readouterr().out
        assert "unknown" in out
        assert "resource budget exhausted: deadline" in out

    def test_verify_injected_unknown_exits_2(self, asserting_file, capsys):
        from repro.runtime import ChaosConfig, inject_faults

        with inject_faults(ChaosConfig(seed=1, unknown_rate=1.0)):
            code = main(["verify", asserting_file, "-D", "LIMIT=2",
                         "--horizon", "3"])
        assert code == 2
        out = capsys.readouterr().out
        assert "resource budget exhausted: injected" in out

    def test_verify_rejects_nonpositive_timeout(self, asserting_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", asserting_file, "-D", "LIMIT=2",
                  "--timeout", "0"])
        assert excinfo.value.code == 4  # usage error, not "violated"

    def test_usage_errors_exit_4_not_2(self, asserting_file):
        # argparse's stock exit code (2) would collide with "undecided".
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", asserting_file, "--timeout", "banana"])
        assert excinfo.value.code == 4


class TestShippedModel:
    """The `.buffy` file shipped with the repo must stay healthy."""

    MODEL = "examples/model.buffy"

    def test_check_run_verify(self, capsys):
        import pathlib

        model = str(pathlib.Path(__file__).resolve().parent.parent
                    / "examples" / "model.buffy")
        assert main(["check", model, "-D", "N=3"]) == 0
        assert main(["run", model, "-D", "N=3", "--horizon", "4"]) == 0
        assert main(["verify", model, "-D", "N=3", "--horizon", "3"]) == 0
        out = capsys.readouterr().out
        assert "proved" in out
