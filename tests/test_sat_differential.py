"""Hypothesis differential tests: arena CDCL vs the DPLL reference.

The clause-arena CDCL (watched literals, LBD reduction, inprocessing)
is checked against the naive DPLL solver on random CNFs:

* SAT/UNSAT agreement on every instance;
* every SAT model actually satisfies the formula;
* every UNSAT answer carries a DRAT proof the independent checker
  replays (the ``--certify`` path), with inprocessing both on and off.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.cnf import CNF, check_assignment
from repro.smt.sat.cdcl import CDCLConfig, CDCLSolver, SatResult, solve_cnf
from repro.smt.sat.dpll import solve_cnf_dpll
from repro.trust import check_drat
from repro.trust.proof import ProofLog

# Small enough for DPLL, large enough to exercise learning, reduction,
# and (with the aggressive configs below) inprocessing.
cnf_shapes = st.tuples(
    st.integers(min_value=1, max_value=12),    # variables
    st.integers(min_value=1, max_value=55),    # clauses
    st.integers(min_value=0, max_value=2**32 - 1),  # rng seed
)

#: Inprocessing forced to run every few conflicts so these tiny
#: instances actually exercise elimination/subsumption/vivification.
AGGRESSIVE = CDCLConfig(
    use_inprocessing=True,
    inprocess_interval=4,
    reduce_base=8,
    restart_base=4,
)
PLAIN = CDCLConfig(use_inprocessing=False)


def _random_cnf(n_vars: int, n_clauses: int, seed: int) -> CNF:
    rng = random.Random(seed)
    cnf = CNF(num_vars=n_vars)
    for _ in range(n_clauses):
        width = rng.randint(1, 3)
        cnf.add_clause([
            rng.choice([1, -1]) * rng.randint(1, n_vars)
            for _ in range(width)
        ])
    return cnf


@settings(max_examples=120, deadline=None)
@given(cnf_shapes)
def test_cdcl_agrees_with_dpll(shape):
    n_vars, n_clauses, seed = shape
    cnf = _random_cnf(n_vars, n_clauses, seed)
    ref_result, _ = solve_cnf_dpll(cnf)
    for config in (AGGRESSIVE, PLAIN):
        result, model, _ = solve_cnf(cnf, config)
        assert result is ref_result, (
            f"verdict mismatch vs DPLL ({config.use_inprocessing=})"
        )
        if result is SatResult.SAT:
            assert check_assignment(cnf, model), "model does not satisfy CNF"


@settings(max_examples=60, deadline=None)
@given(cnf_shapes)
def test_unsat_answers_carry_checkable_drat_proofs(shape):
    n_vars, n_clauses, seed = shape
    cnf = _random_cnf(n_vars, n_clauses, seed)
    ref_result, _ = solve_cnf_dpll(cnf)
    if ref_result is not SatResult.UNSAT:
        return
    for config in (AGGRESSIVE, PLAIN):
        proof = ProofLog()
        solver = CDCLSolver(cnf.num_vars, config, proof=proof)
        ok = solver.add_cnf(cnf)
        result = solver.solve() if ok else SatResult.UNSAT
        assert result is SatResult.UNSAT
        # The independent checker must accept the refutation — with
        # inprocessing on, this covers elimination/strengthening steps.
        check_drat(cnf.num_vars, cnf.clauses, proof.steps)


@settings(max_examples=40, deadline=None)
@given(cnf_shapes, st.integers(min_value=1, max_value=12))
def test_agreement_under_assumptions(shape, pivot):
    """UNSAT-under-assumptions vs DPLL on the strengthened formula."""
    n_vars, n_clauses, seed = shape
    cnf = _random_cnf(n_vars, n_clauses, seed)
    lit = ((pivot - 1) % n_vars) + 1
    strengthened = CNF(num_vars=cnf.num_vars)
    for clause in cnf.clauses:
        strengthened.add_clause(clause)
    strengthened.add_clause([lit])
    ref_result, _ = solve_cnf_dpll(strengthened)

    solver = CDCLSolver(cnf.num_vars, AGGRESSIVE)
    if not solver.add_cnf(cnf):
        # Root-level conflict while loading: the base formula is
        # already UNSAT, so the strengthened one must be too.
        assert ref_result is SatResult.UNSAT
        return
    result = solver.solve([lit])
    assert result is ref_result
    if result is SatResult.SAT:
        model = solver.model()
        assert check_assignment(strengthened, model)
    else:
        assert lit in solver.unsat_assumptions() or solver._ok is False
