"""Cross-validation: FPerf-style baselines vs Buffy-compiled encodings.

The paper's pitch is that Buffy programs compile to the same analyses
one would hand-write FPerf-style.  These tests make that concrete: for
each scheduler, a family of queries must receive the *same* sat/unsat
answer from (a) the hand-written low-level encoding and (b) the
encoding compiled from the 7-19-line Buffy program.
"""

import pytest

from repro.backends.smt_backend import SmtBackend, Status
from repro.baselines.fperf_fq import encode_fq_baseline
from repro.baselines.fperf_prio import encode_prio_baseline
from repro.baselines.fperf_rr import encode_rr_baseline
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import fq_buggy, round_robin, strict_priority
from repro.smt.solver import CheckResult
from repro.smt.terms import FALSE, TRUE, mk_and, mk_int, mk_le, mk_lt

N, T, CAP, ARR = 2, 4, 5, 2
CONFIG = EncodeConfig(buffer_capacity=CAP, arrivals_per_step=ARR)


def baseline_sat(ctx, query) -> bool:
    solver = ctx.solver()
    solver.add(query)
    result = solver.check()
    assert result is not CheckResult.UNKNOWN
    return result is CheckResult.SAT


def buffy_sat(backend, query) -> bool:
    result = backend.find_trace(query)
    assert result.status is not Status.UNKNOWN
    return result.status is Status.SATISFIED


def queries_for(deq0, deq1, backlog0_each_step):
    """Query builders shared between the two encodings.

    ``deq0``/``deq1`` are cumulative dequeue terms; ``backlog0_each_step``
    is a list of per-step end-of-step backlog terms for queue 0.
    """
    return {
        "q0_dominates": mk_and(mk_le(mk_int(3), deq0), mk_le(deq1, mk_int(0))),
        "q1_dominates": mk_and(mk_le(mk_int(3), deq1), mk_le(deq0, mk_int(0))),
        "both_heavy": mk_and(mk_le(mk_int(3), deq0), mk_le(mk_int(3), deq1)),
        "impossible_total": mk_le(mk_int(T + 1), deq0 + deq1),
        "starved_q0": mk_and(
            *[mk_le(mk_int(1), b) for b in backlog0_each_step],
            mk_le(deq0, mk_int(1)),
            mk_le(mk_int(T - 2), deq1),
        ),
    }


def baseline_queries(ctx):
    return queries_for(
        ctx.total_deq(0),
        ctx.total_deq(1),
        [ctx.cnt[0][t + 1] for t in range(T)],
    )


def buffy_queries(backend):
    return queries_for(
        backend.deq_count("ibs[0]"),
        backend.deq_count("ibs[1]"),
        [backend.backlog("ibs[0]", t) for t in range(T)],
    )


@pytest.mark.parametrize("name", [
    "q0_dominates", "q1_dominates", "both_heavy",
    "impossible_total", "starved_q0",
])
@pytest.mark.parametrize("scheduler,encode", [
    ("prio", encode_prio_baseline),
    ("rr", encode_rr_baseline),
    ("fq", encode_fq_baseline),
])
def test_cross_validation(name, scheduler, encode):
    makers = {"prio": strict_priority, "rr": round_robin, "fq": fq_buggy}
    ctx = encode(n_queues=N, horizon=T, capacity=CAP, max_arrivals=ARR)
    backend = SmtBackend(makers[scheduler](N), steps=T, config=CONFIG)

    base_answer = baseline_sat(ctx, baseline_queries(ctx)[name])
    buffy_answer = buffy_sat(backend, buffy_queries(backend)[name])
    assert base_answer == buffy_answer, (
        f"{scheduler}/{name}: baseline={base_answer} buffy={buffy_answer}"
    )


def test_expected_answers_prio():
    """Sanity-pin a few expected answers so cross-validation can't pass
    by both encodings being wrong the same way."""
    ctx = encode_prio_baseline(n_queues=N, horizon=T, capacity=CAP,
                               max_arrivals=ARR)
    queries = baseline_queries(ctx)
    assert baseline_sat(ctx, queries["q0_dominates"])
    assert baseline_sat(ctx, queries["q1_dominates"])
    assert not baseline_sat(ctx, queries["impossible_total"])
    # Strict priority starves q1, never q0.
    assert not baseline_sat(ctx, queries["starved_q0"])


def test_expected_answers_fq():
    ctx = encode_fq_baseline(n_queues=N, horizon=T, capacity=CAP,
                             max_arrivals=ARR)
    queries = baseline_queries(ctx)
    # The FQ bug: q0 starved while continuously backlogged IS reachable.
    assert baseline_sat(ctx, queries["starved_q0"])


def test_expected_answers_rr():
    ctx = encode_rr_baseline(n_queues=N, horizon=T, capacity=CAP,
                             max_arrivals=ARR)
    queries = baseline_queries(ctx)
    # Round robin with q0 continuously backlogged cannot starve q0.
    assert not baseline_sat(ctx, queries["starved_q0"])
