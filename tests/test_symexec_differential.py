"""Differential testing: symbolic execution vs the reference interpreter.

For a given program and a *pinned* concrete workload (arrival variables
constrained to exact counts, no havocs), the unrolled symbolic encoding
is deterministic; its statistics must PROVABLY equal what the concrete
interpreter computes on the same workload.  This closes the loop across
parser → checker → interpreter → symbolic executor → bit-blaster →
CDCL.
"""

import random

import pytest

from repro.backends.smt_backend import SmtBackend, Status
from repro.buffers.packets import Packet
from repro.compiler.symexec import EncodeConfig
from repro.lang.interp import Interpreter
from repro.netmodels.schedulers import (
    fq_buggy,
    fq_fixed,
    round_robin,
    strict_priority,
)
from repro.smt.terms import mk_and, mk_bool, mk_eq, mk_int, mk_not

CONFIG = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)


def pin_arrivals(backend: SmtBackend, workload):
    """Assumptions forcing the symbolic arrivals to equal the workload."""
    pins = []
    for av in backend.machine.arrival_vars:
        count = len(workload[av.step].get(av.buffer, []))
        pins.append(mk_eq(av.present, mk_bool(av.slot < count)))
    return pins


def random_workload(labels, horizon, seed):
    rng = random.Random(seed)
    out = []
    for _ in range(horizon):
        step = {}
        for label in labels:
            n = rng.randint(0, 2)
            if n:
                flow = int(label.partition("[")[2][:-1]) if "[" in label else 0
                step[label] = [Packet(flow=flow) for _ in range(n)]
        out.append(step)
    return out


@pytest.mark.parametrize("make", [
    strict_priority, round_robin, fq_buggy, fq_fixed,
])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_deq_counts_match_interpreter(make, seed):
    horizon = 4
    checked = make(2)
    backend = SmtBackend(checked, steps=horizon, config=CONFIG)
    labels = backend.machine.input_buffer_labels()
    workload = random_workload(labels, horizon, seed)

    interp = Interpreter(checked, buffer_capacity=CONFIG.buffer_capacity)
    interp.run(workload)

    pins = pin_arrivals(backend, workload)
    agree_terms = []
    for label in labels + ["ob"]:
        if label.endswith("]"):
            name, _, rest = label.partition("[")
            buf = interp.buffer(name, int(rest[:-1]))
        else:
            buf = interp.buffer(label)
        agree_terms.append(
            mk_eq(backend.deq_count(label), mk_int(buf.stats.dequeued_packets))
        )
        agree_terms.append(
            mk_eq(backend.backlog(label), mk_int(buf.backlog_p()))
        )
        agree_terms.append(
            mk_eq(backend.drop_count(label), mk_int(buf.stats.dropped_packets))
        )
    # Under the pinned workload, disagreement must be impossible.
    result = backend.find_trace(
        mk_not(mk_and(*agree_terms)), extra_assumptions=pins
    )
    assert result.status is Status.UNSATISFIABLE, (
        f"symbolic and concrete semantics diverge for {checked.name}"
        f" on seed {seed}"
    )


def test_pinned_trace_is_feasible():
    """Sanity: the pinned workload itself must be admissible."""
    checked = round_robin(2)
    backend = SmtBackend(checked, steps=3, config=CONFIG)
    labels = backend.machine.input_buffer_labels()
    workload = random_workload(labels, 3, seed=5)
    pins = pin_arrivals(backend, workload)
    result = backend.find_trace(mk_bool(True), extra_assumptions=pins)
    assert result.status is Status.SATISFIED


def test_monitor_values_match():
    src = """\
    p(in buffer[2] ibs, out buffer ob){
      monitor int total;
      for (i in 0..2) do {
        total = total + backlog-p(ibs[i]);
      }
      local bool done; done = false;
      for (i in 0..2) do {
        if (!done & backlog-p(ibs[i]) > 0) {
          move-p(ibs[i], ob, 1); done = true;
        }
      }
    }
    """
    from repro.lang.checker import check_program
    from repro.lang.parser import parse_program

    checked = check_program(parse_program(src))
    horizon = 3
    backend = SmtBackend(checked, steps=horizon, config=CONFIG)
    workload = random_workload(["ibs[0]", "ibs[1]"], horizon, seed=9)
    interp = Interpreter(checked, buffer_capacity=CONFIG.buffer_capacity)
    trace = interp.run(workload)
    pins = pin_arrivals(backend, workload)
    for t in range(horizon):
        expected = trace.steps[t].monitors["total"]
        term = backend.monitor("total", t)
        result = backend.find_trace(
            mk_not(mk_eq(term, mk_int(expected))), extra_assumptions=pins
        )
        assert result.status is Status.UNSATISFIABLE
