"""Tests for the SMT back end: verification, synthesis, decoding."""

import pytest

from repro.analysis.queries import (
    fair_share,
    loss,
    no_loss,
    ordering_fifo,
    starvation,
)
from repro.analysis.traces import replay
from repro.backends.smt_backend import SmtBackend, Status
from repro.compiler.symexec import EncodeConfig
from repro.lang.checker import check_program
from repro.lang.parser import parse_program
from repro.netmodels.schedulers import fq_buggy, fq_fixed, strict_priority
from repro.smt.terms import mk_and, mk_int, mk_le, mk_lt, mk_not

CONFIG = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)


class TestBasics:
    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            SmtBackend(strict_priority(2), steps=0)

    def test_prove_total_service_bound(self):
        backend = SmtBackend(strict_priority(2), steps=3, config=CONFIG)
        total = backend.deq_count("ibs[0]") + backend.deq_count("ibs[1]")
        assert backend.prove(mk_le(total, mk_int(3))).status is Status.PROVED
        result = backend.prove(mk_le(total, mk_int(2)))
        assert result.status is Status.VIOLATED
        assert result.counterexample is not None

    def test_find_trace_decodes_packets(self):
        backend = SmtBackend(strict_priority(2), steps=3, config=CONFIG)
        result = backend.find_trace(
            mk_le(mk_int(2), backend.deq_count("ibs[1]"))
        )
        assert result.status is Status.SATISFIED
        trace = result.counterexample
        assert trace.total_arrivals("ibs[1]") >= 2
        assert "counterexample over 3 steps" in trace.describe()

    def test_priority_invariant(self):
        backend = SmtBackend(strict_priority(2), steps=4, config=CONFIG)
        blocked = [
            mk_le(mk_int(1), backend.backlog("ibs[0]", t)) for t in range(4)
        ]
        q1_served = mk_le(mk_int(1), backend.deq_count("ibs[1]"))
        result = backend.find_trace(q1_served, extra_assumptions=blocked)
        assert result.status is Status.UNSATISFIABLE


class TestInProgramAsserts:
    SRC = """\
    p(in buffer ib, out buffer ob){
      monitor int served; local int before;
      before = backlog-p(ib);
      move-p(ib, ob, 1);
      served = served + (before - backlog-p(ib));
      assert(served <= LIMIT);
    }
    """

    def _backend(self, limit, horizon=3):
        checked = check_program(
            parse_program(self.SRC, consts={"LIMIT": limit})
        )
        return SmtBackend(checked, steps=horizon, config=CONFIG)

    def test_violable_assert_found(self):
        result = self._backend(limit=1).check_assertions()
        assert result.status is Status.VIOLATED
        assert result.counterexample.violated

    def test_unviolable_assert_proved(self):
        # served <= horizon always (one packet per step).
        result = self._backend(limit=3).check_assertions()
        assert result.status is Status.PROVED

    def test_no_obligations_is_proved(self):
        checked = check_program(parse_program(
            "p(in buffer ib, out buffer ob){ move-p(ib, ob, 1); }"
        ))
        backend = SmtBackend(checked, steps=2, config=CONFIG)
        assert backend.check_assertions().status is Status.PROVED


class TestAssume:
    SRC = """\
    p(in buffer ib, out buffer ob){
      assume(backlog-p(ib) <= 1);
      move-p(ib, ob, 1);
    }
    """

    def test_assume_restricts_traces(self):
        checked = check_program(parse_program(self.SRC))
        backend = SmtBackend(checked, steps=3, config=CONFIG)
        # With at most 1 packet present at a time, at most 3 ever dequeue,
        # and a backlog of 2 is impossible.
        result = backend.find_trace(
            mk_le(mk_int(2), backend.backlog("ib", 0))
        )
        assert result.status is Status.UNSATISFIABLE


class TestCaseStudyQueries:
    def test_starvation_found_on_buggy_fq(self):
        backend = SmtBackend(fq_buggy(2), steps=5, config=CONFIG)
        query = starvation(backend, "ibs[0]", max_service=1,
                           competitors_min_service={"ibs[1]": 3})
        result = backend.find_trace(query)
        assert result.status is Status.SATISFIED

    def test_starvation_unsat_on_fixed_fq(self):
        backend = SmtBackend(fq_fixed(2), steps=5, config=CONFIG)
        query = starvation(backend, "ibs[0]", max_service=1,
                           competitors_min_service={"ibs[1]": 3})
        result = backend.find_trace(query)
        assert result.status is Status.UNSATISFIABLE

    def test_fair_share_query_shape(self):
        backend = SmtBackend(fq_fixed(2), steps=4, config=CONFIG)
        term = fair_share(backend, "ibs[0]")
        assert term.sort.value == "Bool"

    def test_loss_queries(self):
        checked = check_program(parse_program(
            "p(in buffer ib, out buffer ob){ move-p(ib, ob, 1); }"
        ))
        config = EncodeConfig(buffer_capacity=2, arrivals_per_step=2)
        backend = SmtBackend(checked, steps=4, config=config)
        assert backend.find_trace(
            loss(backend, "ib")
        ).status is Status.SATISFIED
        assert backend.find_trace(
            no_loss(backend, ["ib"])
        ).status is Status.SATISFIED

    def test_replay_consistency(self):
        backend = SmtBackend(fq_buggy(2), steps=5, config=CONFIG)
        query = starvation(backend, "ibs[0]", max_service=1)
        result = backend.find_trace(query)
        report = replay(fq_buggy(2), result.counterexample, backend=backend)
        assert report.consistent, report.mismatches

    def test_ordering_query_satisfiable(self):
        backend = SmtBackend(strict_priority(2), steps=3, config=CONFIG)
        query = ordering_fifo(backend, "ob", first_flow=0, second_flow=1)
        # prio: flow-0 packets go out first, so flow0-then-flow1 is reachable.
        assert backend.find_trace(query).status is Status.SATISFIED

    def test_ordering_query_unsat_when_impossible(self):
        backend = SmtBackend(strict_priority(2), steps=3, config=CONFIG)
        # While ibs[0] stays backlogged, a flow-1 packet can never be
        # *ahead of* a flow-0 packet in the output.
        blocked = [
            mk_le(mk_int(1), backend.backlog("ibs[0]", t)) for t in range(3)
        ]
        query = ordering_fifo(backend, "ob", first_flow=1, second_flow=0)
        result = backend.find_trace(query, extra_assumptions=blocked)
        assert result.status is Status.UNSATISFIABLE


class TestCounterModelBackend:
    def test_counter_model_agrees_on_count_query(self):
        for model in ("list", "counter"):
            config = EncodeConfig(
                buffer_model=model, buffer_capacity=5, arrivals_per_step=2
            )
            backend = SmtBackend(strict_priority(2), steps=3, config=config)
            sat_q = mk_le(mk_int(2), backend.deq_count("ibs[0]"))
            assert backend.find_trace(sat_q).status is Status.SATISFIED
            unsat_q = mk_le(mk_int(4), backend.deq_count("ibs[0]"))
            assert backend.find_trace(unsat_q).status is Status.UNSATISFIABLE
