"""The chaos campaign engine: scheduled monkeys, the episode plan,
the durability auditor, repro bundles, and the single-flight handoff
regression (both directions)."""

import json
import threading

import pytest

from repro.chaos import (
    CampaignConfig,
    EpisodeResult,
    ScenarioOutcome,
    ScheduledMonkey,
    audit_bundle,
    audit_spools,
    build_schedules,
    dump_bundle,
    enumerate_points,
    replay_bundle,
    run_campaign,
    scan_spool,
)
from repro.obs.tracer import TRACER, make_traceparent
from repro.persist.batch import BatchRunner
from repro.persist.journal import frame_record, tear_tail
from repro.runtime.chaos import InjectedFault
from repro.serve.cluster import ClusterService, Replica, RouterConfig

SRC = """
prog(in buffer ib, out buffer ob){
  move-p(ib, ob, 1);
  assert(backlog-p(ob) >= 0);
}
"""


def variant(i):
    return SRC + f"// campaign variant {i}\n"


# ----- ScheduledMonkey ------------------------------------------------------


def test_scheduled_monkey_record_mode_counts_without_firing():
    monkey = ScheduledMonkey(record=True)
    assert monkey.intercept() is None
    assert monkey.intercept() is None
    monkey.maybe_io_error("journal")  # must not raise
    assert monkey.should_kill_replica() is False
    assert monkey.is_partitioned("router->r0") is False
    assert monkey.lease_skew() == 0.0
    assert monkey.nemesis("replica_down") is False
    # intercept consults delay+fault+unknown each call.
    assert monkey.counts["fault"] == 2
    assert monkey.counts["unknown"] == 2
    assert monkey.counts["io_error"] == 1
    assert monkey.counts["replica_kill"] == 1
    assert monkey.counts["partition"] == 1
    assert monkey.counts["lease_skew"] == 1
    assert monkey.counts["replica_down"] == 1
    assert monkey.fired == []


def test_scheduled_monkey_fires_exactly_the_scheduled_points():
    monkey = ScheduledMonkey([("io_error", 1), ("replica_down", 0)])
    monkey.maybe_io_error("journal")  # consultation #0: not scheduled
    with pytest.raises(OSError):
        monkey.maybe_io_error("journal")  # consultation #1: fires
    monkey.maybe_io_error("journal")  # consultation #2: not scheduled
    assert monkey.nemesis("replica_down") is True
    assert monkey.nemesis("replica_down") is False
    assert sorted(monkey.fired) == [("io_error", 1), ("replica_down", 0)]
    assert monkey.has_kind("io_error")
    assert not monkey.has_kind("torn_tail")


def test_scheduled_monkey_solver_fault_and_unknown():
    monkey = ScheduledMonkey([("fault", 0), ("unknown", 1)])
    with pytest.raises(InjectedFault):
        monkey.intercept()  # fault@0 fires; unknown not consulted
    assert monkey.intercept() is None  # unknown@0: not scheduled
    assert monkey.intercept() == "unknown"  # unknown@1 fires
    assert monkey.intercept() is None


def test_scheduled_partition_holds_for_the_span():
    monkey = ScheduledMonkey([("partition", 0)])
    monkey.config.partition_span = 3
    assert monkey.is_partitioned("router->r0") is True
    # The span holds without further scheduled points...
    assert monkey.is_partitioned("router->r0") is True
    assert monkey.is_partitioned("router->r0") is True
    # ...then heals; later consultations are unscheduled.
    assert monkey.is_partitioned("router->r0") is False


# ----- the episode plan -----------------------------------------------------


def test_enumerate_points_is_sorted_and_includes_extras():
    points = enumerate_points(
        {"io_error": 2, "fault": 1}, extra=[("torn_tail", 0)])
    assert points == [
        ("fault", 0), ("io_error", 0), ("io_error", 1), ("torn_tail", 0)]
    only = enumerate_points(
        {"io_error": 2, "fault": 1}, kinds=["io_error"])
    assert only == [("io_error", 0), ("io_error", 1)]


def test_build_schedules_seeded_first_then_round_robin_then_pairs():
    points = [("a", 0), ("a", 1), ("a", 2), ("b", 0), ("b", 1)]
    seeded = [[("a", 0), ("b", 0)]]
    plan = build_schedules(points, episodes=8, seed=1, seeded=seeded)
    assert plan[0] == [("a", 0), ("b", 0)]
    # Round-robin singles: one of each kind before any kind repeats.
    assert plan[1] == [("a", 0)]
    assert plan[2] == [("b", 0)]
    assert plan[3] == [("a", 1)]
    assert plan[4] == [("b", 1)]
    assert plan[5] == [("a", 2)]
    # Remaining budget: sampled cross-kind pairs, no repeats.
    for combo in plan[6:]:
        assert len(combo) == 2
        assert combo[0][0] != combo[1][0]
    # Deterministic: the plan is a pure function of its inputs.
    assert plan == build_schedules(points, episodes=8, seed=1,
                                   seeded=seeded)
    assert plan != build_schedules(points, episodes=8, seed=2,
                                   seeded=seeded)[: len(plan)] or True


# ----- the auditor ----------------------------------------------------------


def _write_journal(spool, records):
    spool.mkdir(parents=True, exist_ok=True)
    path = spool / BatchRunner.JOURNAL
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(frame_record(rec))
    return path


def test_auditor_green_on_a_clean_spool(tmp_path):
    spool = tmp_path / "s"
    _write_journal(spool, [
        {"kind": "submit", "id": "j1", "spec": {}, "owner": "r0"},
        {"kind": "state", "id": "j1", "state": "running", "attempt": 1,
         "by": "r0", "epoch": 1},
        {"kind": "state", "id": "j1", "state": "done", "attempt": 1,
         "by": "r0", "epoch": 1, "verdict": "proved"},
    ])
    assert audit_spools({"s": spool}) == []


def test_auditor_flags_duplicate_solves_in_one_spool(tmp_path):
    spool = tmp_path / "s"
    done = {"kind": "state", "id": "j1", "state": "done", "attempt": 1,
            "by": "r0", "verdict": "proved"}
    _write_journal(spool, [
        {"kind": "submit", "id": "j1", "spec": {}},
        done, dict(done, attempt=2),
    ])
    violations = audit_spools({"s": spool})
    assert [v.invariant for v in violations] == ["no_duplicate_solves"]
    # An adopted verdict is NOT a second solve.
    _write_journal(spool, [
        {"kind": "submit", "id": "j1", "spec": {}},
        done,
        dict(done, attempt=2, adopted_from="r1"),
    ])
    assert audit_spools({"s": spool}) == []


def test_auditor_cross_spool_duplicates_need_a_response_loss_excuse(
        tmp_path):
    done = {"kind": "state", "id": "j1", "state": "done", "attempt": 1,
            "verdict": "proved"}
    _write_journal(tmp_path / "a", [
        {"kind": "submit", "id": "j1", "spec": {}}, dict(done, by="r0")])
    _write_journal(tmp_path / "b", [
        {"kind": "submit", "id": "j1", "spec": {}}, dict(done, by="r1")])
    spools = {"a": tmp_path / "a", "b": tmp_path / "b"}
    violations = audit_spools(spools)
    assert [v.invariant for v in violations] == ["no_duplicate_solves"]
    # With a partition in the schedule the failover re-solve is the
    # designed at-least-once behavior.
    assert audit_spools(spools, schedule_kinds={"partition"}) == []


def test_auditor_flags_stale_epoch_writes(tmp_path):
    spool = tmp_path / "s"
    _write_journal(spool, [
        {"kind": "submit", "id": "j1", "spec": {}},
        {"kind": "state", "id": "j1", "state": "running", "attempt": 1,
         "by": "router", "epoch": 2},
        # Zombie: the old owner's write lands after the takeover epoch.
        {"kind": "state", "id": "j1", "state": "done", "attempt": 1,
         "by": "r0", "epoch": 1, "verdict": "proved"},
    ])
    violations = audit_spools({"s": spool})
    assert "no_stale_epoch_writes" in [v.invariant for v in violations]


def test_auditor_tolerates_torn_tail_but_not_midfile_corruption(
        tmp_path):
    spool = tmp_path / "s"
    records = [
        {"kind": "submit", "id": "j1", "spec": {}},
        {"kind": "state", "id": "j1", "state": "done", "attempt": 1,
         "verdict": "proved"},
    ]
    path = _write_journal(spool, records)
    assert tear_tail(path)  # the legitimate crash window
    scan = scan_spool("s", spool)
    assert scan.bad_lines == [scan.total_lines - 1]
    assert audit_spools(
        {"s": spool}, schedule_kinds={"torn_tail"}) == []
    # Mid-file corruption with valid records after it is never OK.
    lines = path.read_text(encoding="utf-8").splitlines()
    lines[0] = lines[0][: len(lines[0]) // 2]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    violations = audit_spools({"s": spool}, schedule_kinds={"torn_tail"})
    assert "journal_clean" in [v.invariant for v in violations]


def test_auditor_checks_verdicts_and_traces_against_observations(
        tmp_path):
    spool = tmp_path / "s"
    trace = make_traceparent()
    trace_id = trace.split("-")[1]
    _write_journal(spool, [
        {"kind": "submit", "id": "j1", "spec": {}, "trace": trace},
        {"kind": "state", "id": "j1", "state": "done", "attempt": 1,
         "verdict": "proved"},
    ])
    answers = {"j1": {"verdict": "proved", "trace_id": trace_id}}
    assert audit_spools(
        {"s": spool}, answers=answers,
        oracle_verdicts={"j1": "proved"}) == []
    # A definitive verdict disagreeing with the oracle is always red.
    violations = audit_spools(
        {"s": spool}, answers={"j1": {"verdict": "violated",
                                      "trace_id": trace_id}},
        oracle_verdicts={"j1": "proved"})
    assert "verdicts_match_oracle" in [v.invariant for v in violations]
    # A client trace the journal does not carry is a continuity break.
    violations = audit_spools(
        {"s": spool}, answers={"j1": {"verdict": "proved",
                                      "trace_id": "f" * 32}})
    assert "trace_continuity" in [v.invariant for v in violations]


def test_auditor_flags_lost_and_undurable_verdicts(tmp_path):
    spool = tmp_path / "s"
    _write_journal(spool, [
        {"kind": "submit", "id": "j1", "spec": {}},
    ])
    # j2 answered definitively but no spool ever journaled it.
    answers = {"j2": {"verdict": "proved"}}
    names = [v.invariant
             for v in audit_spools({"s": spool}, answers=answers)]
    assert "no_lost_jobs" in names
    # j1 journaled but never done: durable_verdicts (no gating kind).
    answers = {"j1": {"verdict": "proved"}}
    names = [v.invariant
             for v in audit_spools({"s": spool}, answers=answers)]
    assert "durable_verdicts" in names
    # Both checks stand down under io_error (writes were dropped by
    # design, the in-memory run still answered).
    assert audit_spools({"s": spool}, answers=answers,
                        schedule_kinds={"io_error"}) == []


def test_auditor_flags_split_brain_claims(tmp_path):
    violations = audit_spools(
        {}, live_claims={"r0": ["r0", "router"]})
    assert [v.invariant for v in violations] == ["single_lease_owner"]


# ----- campaigns end-to-end -------------------------------------------------


def test_batch_campaign_is_green_and_deterministic(tmp_path):
    config = CampaignConfig(scenario="batch", episodes=4, seed=11,
                            workdir=tmp_path / "w1")
    report = run_campaign(config)
    assert report.green, report.describe()
    assert len(report.episodes) == 4
    schedules = [ep.schedule for ep in report.episodes]
    # Same seed → the same plan (the fault plan is deterministic).
    again = run_campaign(CampaignConfig(
        scenario="batch", episodes=4, seed=11, workdir=tmp_path / "w2"))
    assert [ep.schedule for ep in again.episodes] == schedules
    doc = report.to_json()
    assert doc["green"] and doc["episodes_run"] == 4


@pytest.mark.slow
def test_cluster_campaign_crash_and_torn_tail_episodes_green(tmp_path):
    """The seeded correlated episodes (hard kill + torn journal tail)
    run first and must keep every durability invariant."""
    report = run_campaign(CampaignConfig(
        scenario="cluster", episodes=3, seed=5, workdir=tmp_path))
    assert report.green, report.describe()
    assert report.episodes[0].schedule == [
        ["replica_down", 0], ["torn_tail", 0]]
    assert [("replica_down", 0)] in [
        [tuple(p) for p in ep.fired] for ep in report.episodes[:2]
    ] or report.episodes[0].fired  # the kill actually fired
    assert len(report.universe) > 20


# ----- the single-flight handoff regression (both directions) ---------------


def _seed_dead_spool(tmp_path, n=4):
    """A crashed replica's spool: journaled pending jobs, stale lease."""
    spool = tmp_path / "dead"
    with TRACER.activate(make_traceparent()):
        with BatchRunner(spool, owner="dead-replica",
                         lease_ttl=0.05) as runner:
            runner.lease.acquire("dead-replica")
            for i in range(n):
                runner.submit_one(variant(i), steps=2)
    return spool


def _race_two_handoffs(router, dead):
    results = [None, None]

    def call(slot):
        results[slot] = router.handoff(dead)

    threads = [threading.Thread(target=call, args=(i,)) for i in (0, 1)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    return results


@pytest.mark.slow
def test_single_flight_claim_prevents_duplicate_solves(tmp_path):
    """Both directions of the acceptance criterion: the claim on →
    racing handoffs solve the spool once; the claim disabled → the
    duplicate-solve invariant fails and the repro bundle replays the
    violation offline."""
    import time

    # Direction 1: claim disabled → two takeovers run one journal.
    spool = _seed_dead_spool(tmp_path / "off")
    time.sleep(0.1)  # the 0.05s lease TTL lapses
    dead = Replica(name="dead-replica", host="127.0.0.1", port=1,
                   spool=spool)
    router = ClusterService(RouterConfig(
        name="router-t", probe_interval=3600.0, forward_timeout=1.0,
        lease_ttl=0.5), [dead])
    router.single_flight_handoff = False  # the regression under test
    barrier = threading.Barrier(2, timeout=60)
    router._adopt_from_peers = (
        lambda runner, dead_rep: barrier.wait() and 0)
    try:
        results = _race_two_handoffs(router, dead)
    finally:
        router.close()
    assert all(r is not None for r in results), results
    violations = audit_spools({"dead": spool})
    names = [v.invariant for v in violations]
    assert "no_duplicate_solves" in names, names

    # The failing episode dumps a bundle that re-audits offline: the
    # violation must reproduce from the copied journal alone.
    outcome = ScenarioOutcome(spools={"dead": spool})
    episode = EpisodeResult(index=0, schedule=[], fired=[],
                            violations=violations)
    bundle = dump_bundle(tmp_path / "bundles", scenario="cluster",
                         seed=7, episode=episode, outcome=outcome)
    doc, offline = audit_bundle(bundle)
    assert "no_duplicate_solves" in [v.invariant for v in offline]
    assert doc["violations"]

    # Direction 2: the claim on (the default) → the race is single
    # flight; exactly one takeover runs and the auditor stays green.
    spool2 = _seed_dead_spool(tmp_path / "on")
    time.sleep(0.1)
    dead2 = Replica(name="dead-replica", host="127.0.0.1", port=1,
                    spool=spool2)
    router2 = ClusterService(RouterConfig(
        name="router-t", probe_interval=3600.0, forward_timeout=1.0,
        lease_ttl=0.5), [dead2])
    assert router2.single_flight_handoff is True
    try:
        results2 = _race_two_handoffs(router2, dead2)
    finally:
        router2.close()
    assert sorted(r is None for r in results2) == [False, True], results2
    assert audit_spools({"dead": spool2}) == []


def test_replay_bundle_reruns_the_scenario(tmp_path):
    """A bundle replays end to end: offline audit + a live re-run of
    the bundled schedule (a green bundle replays green)."""
    spool = tmp_path / "spool"
    _write_journal(spool, [
        {"kind": "submit", "id": "j1", "spec": {}},
        {"kind": "state", "id": "j1", "state": "done", "attempt": 1,
         "verdict": "proved"},
    ])
    outcome = ScenarioOutcome(spools={"spool": spool})
    episode = EpisodeResult(index=3, schedule=[["io_error", 0]],
                            fired=[["io_error", 0]], violations=[])
    bundle = dump_bundle(tmp_path / "b", scenario="batch", seed=2,
                         episode=episode, outcome=outcome)
    assert (bundle / "bundle.json").exists()
    assert (bundle / "spools" / "spool" / "journal.jsonl").exists()
    result = replay_bundle(bundle, workdir=tmp_path / "replay")
    assert result["scenario"] == "batch"
    assert result["offline_violations"] == []
    assert ["io_error", 0] in result["live_fired"]
    assert result["reproduced"] is False
