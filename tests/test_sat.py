"""Tests for the CDCL and DPLL SAT engines."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.cnf import CNF, check_assignment
from repro.smt.sat.cdcl import (
    CDCLConfig,
    CDCLSolver,
    SatResult,
    _luby,
    solve_cnf,
)
from repro.smt.sat.dpll import DPLLSolver, solve_cnf_dpll


def brute_force_sat(cnf: CNF) -> bool:
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        if check_assignment(cnf, [False] + list(bits)):
            return True
    return False


def random_cnf(rng: random.Random, n_vars: int, n_clauses: int) -> CNF:
    cnf = CNF(num_vars=n_vars)
    for _ in range(n_clauses):
        clause = [
            rng.choice([1, -1]) * rng.randint(1, n_vars) for _ in range(3)
        ]
        cnf.add_clause(clause)
    return cnf


def pigeonhole(pigeons: int, holes: int) -> CNF:
    cnf = CNF()
    var = {
        (p, h): cnf.new_var()
        for p in range(pigeons)
        for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


class TestLuby:
    def test_prefix(self):
        # The canonical Luby sequence.
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [_luby(i) for i in range(1, 16)] == expected


class TestCDCLBasics:
    def test_empty_formula_sat(self):
        solver = CDCLSolver(0)
        assert solver.solve() is SatResult.SAT

    def test_unit_propagation(self):
        solver = CDCLSolver(3)
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        assert model[1] and model[2] and model[3]

    def test_trivial_unsat(self):
        solver = CDCLSolver(1)
        solver.add_clause([1])
        assert not solver.add_clause([-1]) or solver.solve() is SatResult.UNSAT

    def test_empty_clause_unsat(self):
        solver = CDCLSolver(1)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() is SatResult.UNSAT

    def test_model_satisfies(self):
        cnf = CNF(num_vars=4)
        cnf.add_clauses([[1, 2], [-1, 3], [-3, -2, 4]])
        result, model, _ = solve_cnf(cnf)
        assert result is SatResult.SAT
        assert check_assignment(cnf, model)

    def test_pigeonhole_unsat(self):
        result, _, stats = solve_cnf(pigeonhole(5, 4))
        assert result is SatResult.UNSAT
        assert stats.conflicts > 0

    def test_pigeonhole_sat(self):
        result, model, _ = solve_cnf(pigeonhole(4, 4))
        assert result is SatResult.SAT

    def test_conflict_budget_unknown(self):
        config = CDCLConfig(max_conflicts=1)
        result, _, _ = solve_cnf(pigeonhole(6, 5), config)
        assert result is SatResult.UNKNOWN

    def test_solver_reusable_after_solve(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve() is SatResult.SAT
        assert solver.solve() is SatResult.SAT


class TestAssumptions:
    def test_unsat_under_assumptions(self):
        solver = CDCLSolver(3)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve(assumptions=[1, -3]) is SatResult.UNSAT
        core = solver.unsat_assumptions()
        assert set(core) <= {1, -3}
        assert len(core) >= 1

    def test_sat_after_unsat_assumptions(self):
        solver = CDCLSolver(3)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve(assumptions=[1, -3]) is SatResult.UNSAT
        assert solver.solve(assumptions=[1]) is SatResult.SAT
        assert solver.model()[3]

    def test_assumption_already_satisfied(self):
        solver = CDCLSolver(2)
        solver.add_clause([1])
        assert solver.solve(assumptions=[1, 2]) is SatResult.SAT

    def test_contradictory_assumptions(self):
        solver = CDCLSolver(1)
        assert solver.solve(assumptions=[1, -1]) is SatResult.UNSAT

    def test_unsat_assumptions_do_not_pollute_phase_saving(self):
        # Regression: an UNSAT solve under assumptions used to leave
        # the assumption-forced polarities in the saved-phase array, so
        # a later plain solve() could pick a different model than a
        # fresh solver on the same clauses.
        clauses = [[-1, 2]]
        polluted = CDCLSolver(2)
        for c in clauses:
            polluted.add_clause(c)
        assert polluted.solve(assumptions=[1, -2]) is SatResult.UNSAT
        assert polluted.solve() is SatResult.SAT

        fresh = CDCLSolver(2)
        for c in clauses:
            fresh.add_clause(c)
        assert fresh.solve() is SatResult.SAT
        assert polluted.model() == fresh.model()

    def test_phase_snapshot_covers_vars_added_during_solve(self):
        # Variables created after the snapshot was taken (e.g. by a
        # clause added mid-session) must keep their phases on restore.
        solver = CDCLSolver(2)
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[1, -2]) is SatResult.UNSAT
        solver.new_var()
        solver.add_clause([3])
        assert solver.solve() is SatResult.SAT
        assert solver.model()[3]


@pytest.mark.parametrize("config", [
    CDCLConfig(),
    CDCLConfig(use_vsids=False),
    CDCLConfig(use_restarts=False),
    CDCLConfig(use_phase_saving=False),
    CDCLConfig(use_minimization=False),
])
def test_feature_toggles_preserve_answers(config):
    """Every CDCL configuration must agree with brute force."""
    rng = random.Random(7)
    for _ in range(60):
        cnf = random_cnf(rng, rng.randint(3, 8), rng.randint(2, 30))
        expected = brute_force_sat(cnf)
        result, model, _ = solve_cnf(cnf, config)
        assert (result is SatResult.SAT) == expected
        if model is not None:
            assert check_assignment(cnf, model)


def test_dpll_agrees_with_brute_force():
    rng = random.Random(13)
    for _ in range(60):
        cnf = random_cnf(rng, rng.randint(3, 7), rng.randint(2, 25))
        expected = brute_force_sat(cnf)
        result, model = solve_cnf_dpll(cnf)
        assert (result is SatResult.SAT) == expected
        if model is not None:
            assert check_assignment(cnf, model)


def test_dpll_decision_budget():
    solver = DPLLSolver(max_decisions=1)
    if solver.add_cnf(pigeonhole(6, 5)):
        assert solver.solve() in (SatResult.UNKNOWN, SatResult.UNSAT)


@given(st.integers(min_value=0, max_value=9999))
@settings(max_examples=200, deadline=None)
def test_random_3sat_cdcl_vs_brute(seed):
    rng = random.Random(seed)
    cnf = random_cnf(rng, rng.randint(2, 7), rng.randint(1, 20))
    expected = brute_force_sat(cnf)
    result, model, _ = solve_cnf(cnf)
    assert (result is SatResult.SAT) == expected
    if model is not None:
        assert check_assignment(cnf, model)


def test_learned_clause_db_reduction_stress():
    """Force enough conflicts to trigger DB reduction and still be correct."""
    # A hard-ish unsat instance keeps the learnt DB busy.
    result, _, stats = solve_cnf(pigeonhole(7, 6))
    assert result is SatResult.UNSAT
    assert stats.learned > 0


def test_eliminate_normalizes_resolvents_against_root_units():
    """BVE resolvents must be re-filtered against the root assignment.

    Eliminating vars 5 and 6 yields the unit resolvents [7] and [8];
    eliminating var 9 next produces the resolvent [-7, -8, 3, 4], whose
    first two literals are already false at level 0.  An unfiltered
    attach watches two false literals, so the clause never wakes
    propagation and the search can return a bogus SAT.  (Regression
    test for a wrong-SAT found on the Figure-6 T=5 instance.)
    """
    clauses = [
        [7, 5], [7, -5],            # eliminate 5 -> unit [7]
        [8, 6], [8, -6],            # eliminate 6 -> unit [8]
        [9, -7, -8, 3], [-9, 4],    # eliminate 9 -> [-7, -8, 3, 4]
        [-3, 10], [-3, -10],        # eliminate 10 -> unit [-3]
        [-4, 11], [-4, -11],        # eliminate 11 -> unit [-4]
    ]
    cnf = CNF(num_vars=11)
    for c in clauses:
        cnf.add_clause(c)
    ref_result, _ = solve_cnf_dpll(cnf)
    assert ref_result is SatResult.UNSAT

    # Subsume/vivify off so elimination alone drives the derivation.
    config = CDCLConfig(
        use_inprocessing=True, use_subsume=False, use_vivify=False
    )
    solver = CDCLSolver(cnf.num_vars, config)
    for c in clauses:
        assert solver.add_clause(c)
    if solver._inprocess(set(), None):
        assert solver.solve() is SatResult.UNSAT


def test_inprocessing_never_attaches_clauses_with_dead_watches():
    """Regression: BVE resolvents built from a strengthened parent.

    In one inprocessing round, subsumption first derives the root units
    1 and 3, then strengthens [6,5,-1,-3,7] to [5,-1,-3,7] — whose
    literals -1/-3 are already false.  Eliminating variable 5 next
    resolves that clause against [-5,8]; unfixed, the resolvent
    [-1,-3,7,8] was attached watching the two false literals, so no
    assignment could ever wake it and the constraint was silently lost
    (observed as a bogus SAT on the Figure-6 T=5 instance).  Vars 7/8
    are frozen, mimicking solve-under-assumptions, so the resolvent's
    live literals stay unassigned through the round.
    """
    clauses = [[1, 2], [1, -2], [3, 4], [3, -4],
               [5, -6, -1, -3, 7], [6, 5, -1, -3, 7], [-5, 8]]
    config = CDCLConfig(use_inprocessing=True, use_vivify=False)
    solver = CDCLSolver(8, config)
    for c in clauses:
        assert solver.add_clause(c)
    assert solver._inprocess({7, 8}, None)
    # Watch invariant: an unsatisfied alive clause must never watch two
    # false literals — their falsification visits already happened, so
    # propagation would never examine the clause again.
    vals = solver._vals
    for cid in range(len(solver._c_start)):
        if solver._c_dead[cid]:
            continue
        idxs = solver._clause_idxs(cid)
        if any(vals[q] > 0 for q in idxs):
            continue  # root-satisfied: watches are irrelevant
        assert not (vals[idxs[0]] < 0 and vals[idxs[1]] < 0), (
            f"clause {solver._clause_lits(cid)} attached with two false"
            " watches: invisible to propagation"
        )
    assert solver.solve([-7, -8]) is SatResult.UNSAT
