"""Engine tests: parallel portfolio, incremental solving, result cache.

The contract under test: whatever the engine configuration — ``jobs``
> 1, a shared incremental encoding, a warm result cache — every query
must return the *same verdict* as the plain sequential solver, because
all portfolio members are complete decision procedures over the same
CNF.  Only wall-clock and models (among equally valid ones) may differ.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.dafny import DafnyBackend, VCStatus
from repro.backends.smt_backend import SmtBackend, Status
from repro.baselines.fperf_fq import encode_fq_baseline
from repro.baselines.fperf_prio import encode_prio_baseline
from repro.baselines.fperf_rr import encode_rr_baseline
from repro.compiler.symexec import EncodeConfig
from repro.engine import ResultCache, formula_fingerprint
from repro.netmodels.schedulers import fq_buggy, fq_fixed, round_robin, strict_priority
from repro.runtime.budget import Budget, ExhaustionReason
from repro.smt.intervals import BoundsEnv, Interval
from repro.smt.solver import CheckResult, SmtSolver
from repro.smt.terms import (
    mk_and,
    mk_bool_var,
    mk_int,
    mk_int_var,
    mk_le,
    mk_not,
    mk_or,
)

N, T, CAP, ARR = 2, 4, 5, 2
CONFIG = EncodeConfig(buffer_capacity=CAP, arrivals_per_step=ARR)

SCHEDULERS = {
    "prio": strict_priority,
    "rr": round_robin,
    "fq": fq_buggy,
}


def _queries(backend: SmtBackend):
    deq0 = backend.deq_count("ibs[0]")
    deq1 = backend.deq_count("ibs[1]")
    return {
        "q0_dominates": mk_and(mk_le(mk_int(3), deq0), mk_le(deq1, mk_int(0))),
        "both_heavy": mk_and(mk_le(mk_int(3), deq0), mk_le(mk_int(3), deq1)),
        "impossible_total": mk_le(mk_int(T + 1), deq0 + deq1),
    }


# ----- parallel portfolio ----------------------------------------------------


class TestParallelPortfolio:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_verdicts_match_sequential(self, scheduler):
        """jobs=2 answers exactly what jobs=1 answers, on every query."""
        maker = SCHEDULERS[scheduler]
        seq = SmtBackend(maker(N), steps=T, config=CONFIG, jobs=1)
        par = SmtBackend(maker(N), steps=T, config=CONFIG, jobs=2)
        for name, query in _queries(seq).items():
            expected = seq.find_trace(query).status
            got = par.find_trace(_queries(par)[name]).status
            assert got is expected, f"{scheduler}/{name}"

    def test_parallel_sat_model_is_validated(self):
        x, y = mk_int_var("x"), mk_int_var("y")
        solver = SmtSolver(parallelism=2)
        solver.set_bounds(x, 0, 15)
        solver.set_bounds(y, 0, 15)
        solver.add(mk_le(mk_int(5), x + y), mk_le(x, mk_int(3)))
        assert solver.check() is CheckResult.SAT
        model = solver.model()
        assert model["x"] + model["y"] >= 5 and model["x"] <= 3

    def test_parallel_unsat(self):
        a = mk_bool_var("a")
        solver = SmtSolver(parallelism=3)
        solver.add(a, mk_not(a))
        assert solver.check() is CheckResult.UNSAT

    def test_parallel_unknown_preserves_attempts_and_reason(self):
        """A capped parallel run reports the same attempts as sequential."""
        from repro.runtime import EscalationPolicy
        from repro.smt.sat.cdcl import CDCLConfig

        solver = SmtSolver(
            parallelism=2,
            sat_config=CDCLConfig(max_conflicts=3),
            escalation=EscalationPolicy(max_attempts=3),
        )
        xs = [mk_int_var(f"q{i}") for i in range(8)]
        for x in xs:
            solver.set_bounds(x.name, 0, 50)
        acc = xs[0]
        for x in xs[1:]:
            acc = acc * x
        solver.add(mk_le(mk_int(10 ** 6), acc))
        result = solver.check()
        if result is CheckResult.UNKNOWN:
            assert solver.last_report is not None
            assert solver.last_report.reason is ExhaustionReason.CONFLICTS
            # Every ladder rung was dispatched (sequential semantics).
            assert solver.stats.attempts == 3


# ----- incremental solving ---------------------------------------------------


class TestIncrementalSolving:
    def test_push_pop_matches_fresh_solvers(self):
        x, y = mk_int_var("x"), mk_int_var("y")
        base = [mk_le(mk_int(0), x), mk_le(x + y, mk_int(10))]
        layers = [
            [mk_le(mk_int(8), x)],
            [mk_le(mk_int(3), y)],   # pushed on top: 8<=x, x+y<=10, 3<=y → UNSAT
        ]
        inc = SmtSolver(incremental=True)
        inc.set_bounds(x, 0, 15)
        inc.set_bounds(y, 0, 15)
        inc.add(*base)
        assert inc.check() is CheckResult.SAT
        inc.push()
        inc.add(*layers[0])
        assert inc.check() is CheckResult.SAT
        inc.push()
        inc.add(*layers[1])
        assert inc.check() is CheckResult.UNSAT
        inc.pop()
        assert inc.check() is CheckResult.SAT  # learned clauses retained, still sound
        inc.pop()
        assert inc.check() is CheckResult.SAT

        # The same sequence with fresh one-shot solvers agrees.
        for extra, expected in [
            ([], CheckResult.SAT),
            (layers[0], CheckResult.SAT),
            (layers[0] + layers[1], CheckResult.UNSAT),
        ]:
            fresh = SmtSolver()
            fresh.set_bounds(x, 0, 15)
            fresh.set_bounds(y, 0, 15)
            fresh.add(*base, *extra)
            assert fresh.check() is expected

    def test_check_assumptions_do_not_stick(self):
        a, b = mk_bool_var("a"), mk_bool_var("b")
        solver = SmtSolver(incremental=True)
        solver.add(mk_or(a, b))
        assert solver.check(mk_not(a), mk_not(b)) is CheckResult.UNSAT
        # The failed assumptions must not poison later calls.
        assert solver.check(mk_not(a)) is CheckResult.SAT
        assert solver.model()["b"] is True
        assert solver.check() is CheckResult.SAT

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_incremental_backend_matches_fresh(self, scheduler):
        """One shared encoding answers like a fresh solver per query."""
        maker = SCHEDULERS[scheduler]
        fresh = SmtBackend(maker(N), steps=T, config=CONFIG)
        shared = SmtBackend(maker(N), steps=T, config=CONFIG,
                            incremental=True)
        for name, query in _queries(fresh).items():
            expected = fresh.find_trace(query).status
            got = shared.find_trace(_queries(shared)[name]).status
            assert got is expected, f"{scheduler}/{name}"

    @staticmethod
    def _dafny_queries():
        def conservation(view):
            return mk_and(*[
                (view.deq_p(label) + view.backlog_p(label)).eq(
                    view.enq_p(label))
                for label in view.buffer_labels()
            ])

        def bounded_backlog(view):
            return mk_and(*[
                mk_le(view.backlog_p(label), mk_int(CAP))
                for label in view.buffer_labels()
            ])

        return [("conservation", conservation),
                ("bounded_backlog", bounded_backlog)]

    def test_dafny_discharges_vcs_against_shared_encoding(self):
        queries = self._dafny_queries()
        seq = DafnyBackend(fq_fixed(2), config=CONFIG, jobs=1)
        report = seq.verify_monolithic(3, queries=queries)
        assert report.vcs and report.ok
        # Sequential jobs=1 runs incrementally by default: re-verify
        # with incremental off and compare per-VC statuses.
        oneshot = DafnyBackend(fq_fixed(2), config=CONFIG, jobs=1,
                               incremental=False)
        baseline = oneshot.verify_monolithic(3, queries=queries)
        assert [vc.status for vc in report.vcs] == \
            [vc.status for vc in baseline.vcs]

    def test_dafny_parallel_vcs_match_sequential(self):
        queries = self._dafny_queries()
        seq = DafnyBackend(fq_fixed(2), config=CONFIG, jobs=1)
        par = DafnyBackend(fq_fixed(2), config=CONFIG, jobs=2)
        seq_report = seq.verify_monolithic(3, queries=queries)
        par_report = par.verify_monolithic(3, queries=queries)
        assert seq_report.vcs
        assert [(vc.name, vc.status) for vc in seq_report.vcs] == \
            [(vc.name, vc.status) for vc in par_report.vcs]


# ----- result cache ----------------------------------------------------------


def _priority_backend(**engine):
    return SmtBackend(strict_priority(N), steps=3, config=CONFIG, **engine)


class TestResultCache:
    def test_cache_hit_returns_identical_verdict(self):
        cache = ResultCache()
        first = _priority_backend(cache=cache)
        query = mk_le(mk_int(1), first.deq_count("ibs[1]"))
        miss = first.find_trace(query)
        assert miss.status is Status.SATISFIED
        assert cache.stats.misses >= 1 and cache.stats.hits == 0

        second = _priority_backend(cache=cache)
        hit = second.find_trace(mk_le(mk_int(1), second.deq_count("ibs[1]")))
        assert hit.status is Status.SATISFIED
        assert cache.stats.hits == 1
        assert hit.solver_stats.cache_hit
        # The replayed model still satisfies the query.
        assert hit.counterexample.total_arrivals() >= 1

    def test_unsat_is_cached(self):
        # certify=False: certified runs treat proof-less cached UNSAT
        # entries as misses, and this test asserts the uncertified
        # cache semantics regardless of REPRO_CERTIFY.
        cache = ResultCache()
        a = mk_bool_var("a")
        for expect_hit in (False, True):
            solver = SmtSolver(cache=cache, certify=False)
            solver.add(a, mk_not(a))
            assert solver.check() is CheckResult.UNSAT
            assert solver.stats.cache_hit is expect_hit

    def test_disk_cache_survives_process_state(self, tmp_path):
        a, b = mk_bool_var("a"), mk_bool_var("b")
        formula = mk_and(mk_or(a, b), mk_not(a))
        first = SmtSolver(cache=ResultCache(disk_dir=tmp_path))
        first.add(formula)
        assert first.check() is CheckResult.SAT

        # A brand-new cache over the same directory: memory-cold, disk-warm.
        cold = ResultCache(disk_dir=tmp_path)
        second = SmtSolver(cache=cold)
        second.add(formula)
        assert second.check() is CheckResult.SAT
        assert cold.stats.disk_hits == 1
        assert second.model()["b"] is True

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        for i in range(4):
            solver = SmtSolver(cache=cache)
            x = mk_int_var(f"x{i}")
            solver.set_bounds(x, 0, 7)
            solver.add(mk_le(mk_int(i), x))
            solver.check()
        assert cache.stats.evictions == 2

    @given(
        hi_a=st.integers(min_value=1, max_value=1 << 20),
        hi_b=st.integers(min_value=1, max_value=1 << 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_never_collides_across_bounds(self, hi_a, hi_b):
        """Same formula, different variable bounds ⇒ different cache key."""
        x = mk_int_var("x")
        formula = mk_le(mk_int(1), x)
        key_a = formula_fingerprint(
            [formula], BoundsEnv({"x": Interval(0, hi_a)}))
        key_b = formula_fingerprint(
            [formula], BoundsEnv({"x": Interval(0, hi_b)}))
        assert (key_a == key_b) == (hi_a == hi_b)

    @given(c=st.integers(min_value=0, max_value=1 << 16))
    @settings(max_examples=40, deadline=None)
    def test_fingerprint_tracks_formula_structure(self, c):
        x = mk_int_var("x")
        bounds = BoundsEnv({"x": Interval(0, 1 << 20)})
        base = formula_fingerprint([mk_le(mk_int(c), x)], bounds)
        shifted = formula_fingerprint([mk_le(mk_int(c + 1), x)], bounds)
        flipped = formula_fingerprint([mk_le(x, mk_int(c))], bounds)
        assert base != shifted and base != flipped


# ----- cross-validation against the hand-written baselines -------------------


@pytest.mark.parametrize("scheduler,encode", [
    ("prio", encode_prio_baseline),
    ("rr", encode_rr_baseline),
    ("fq", encode_fq_baseline),
])
def test_engine_matches_baselines(scheduler, encode):
    """Parallel + cached + incremental answers == hand-written baseline."""
    ctx = encode(n_queues=N, horizon=T, capacity=CAP, max_arrivals=ARR)
    engine_backend = SmtBackend(
        SCHEDULERS[scheduler](N), steps=T, config=CONFIG,
        jobs=2, cache=ResultCache(), incremental=True,
    )
    deq0 = engine_backend.deq_count("ibs[0]")
    deq1 = engine_backend.deq_count("ibs[1]")
    pairs = [
        (mk_le(mk_int(3), ctx.total_deq(0)), mk_le(mk_int(3), deq0)),
        (mk_le(mk_int(T + 1), ctx.total_deq(0) + ctx.total_deq(1)),
         mk_le(mk_int(T + 1), deq0 + deq1)),
        (mk_and(mk_le(mk_int(3), ctx.total_deq(1)),
                mk_le(ctx.total_deq(0), mk_int(0))),
         mk_and(mk_le(mk_int(3), deq1), mk_le(deq0, mk_int(0)))),
    ]
    for base_query, buffy_query in pairs:
        base_solver = ctx.solver()
        base_solver.add(base_query)
        base = base_solver.check()
        assert base is not CheckResult.UNKNOWN
        got = engine_backend.find_trace(buffy_query).status
        assert got is not Status.UNKNOWN
        assert (got is Status.SATISFIED) == (base is CheckResult.SAT), \
            f"{scheduler}: engine disagrees with baseline"
