"""Tests for program composition (concrete and symbolic networks)."""

import pytest

from repro.backends.network import NetworkBackend
from repro.backends.smt_backend import Status
from repro.buffers.packets import Packet
from repro.compiler.composition import (
    ConcreteNetwork,
    Connection,
    SymbolicNetwork,
)
from repro.compiler.symexec import EncodeConfig
from repro.lang.checker import check_program
from repro.lang.parser import parse_program
from repro.smt.terms import mk_bool, mk_eq, mk_int, mk_le, mk_not

RELAY = "relay(in buffer rin, out buffer rout){ move-p(rin, rout, 8); }"
HALF = "half(in buffer hin, out buffer hout){ move-p(hin, hout, 1); }"

CONFIG = EncodeConfig(buffer_capacity=8, arrivals_per_step=2)


def prog(src):
    return check_program(parse_program(src))


class TestTopology:
    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError):
            ConcreteNetwork(
                {"a": prog(RELAY)},
                [Connection("a", "rout", "missing", "rin")],
            )


class TestConcreteNetwork:
    def test_pipeline_delivers_next_step(self):
        net = ConcreteNetwork(
            {"a": prog(RELAY), "b": prog(HALF)},
            [Connection("a", "rout", "b", "hin")],
        )
        net.step({"a": {"rin": [Packet(flow=1)]}})
        # The packet left a's output at end of step 0; b sees it at step 1.
        assert net.interpreter("b").buffer("hin").backlog_p() == 0
        net.step()
        assert net.interpreter("b").buffer("hin").stats.enqueued_packets == 1

    def test_unit_delay_chain(self):
        programs = {f"d{k}": prog(RELAY) for k in range(3)}
        connections = [
            Connection(f"d{k}", "rout", f"d{k+1}", "rin") for k in range(2)
        ]
        net = ConcreteNetwork(programs, connections)
        net.step({"d0": {"rin": [Packet()]}})
        records = [net.step() for _ in range(4)]
        # One step per hop: the packet reaches d2's output buffer stats
        # after three steps of motion.
        d2_out = net.interpreter("d2").buffer("rout")
        assert net.interpreter("d2").buffer("rin").stats.enqueued_packets == 1

    def test_rate_mismatch_backlog(self):
        # a relays everything; b serves one per step -> backlog builds in b.
        net = ConcreteNetwork(
            {"a": prog(RELAY), "b": prog(HALF)},
            [Connection("a", "rout", "b", "hin")],
        )
        for _ in range(5):
            net.step({"a": {"rin": [Packet(), Packet()]}})
        assert net.interpreter("b").buffer("hin").backlog_p() >= 3


class TestSymbolicNetwork:
    def test_connected_inputs_get_no_fresh_traffic(self):
        net = SymbolicNetwork(
            {"a": prog(RELAY), "b": prog(HALF)},
            [Connection("a", "rout", "b", "hin")],
            default_config=CONFIG,
        )
        net.exec_step()
        buffers_with_arrivals = {av.buffer for av in net.arrival_vars}
        assert buffers_with_arrivals == {"rin"}

    def test_network_backend_flow_conservation(self):
        backend = NetworkBackend(
            {"a": prog(RELAY), "b": prog(HALF)},
            [Connection("a", "rout", "b", "hin")],
            steps=3,
            default_config=CONFIG,
        )
        # Whatever b received must have been dequeued by a no later than
        # the previous step.
        received = backend.enq_count("b", "hin")
        sent = backend.deq_count("a", "rin")
        result = backend.prove(mk_le(received, sent))
        assert result.status is Status.PROVED

    def test_symbolic_matches_concrete_pipeline(self):
        programs = {"a": prog(RELAY), "b": prog(HALF)}
        connections = [Connection("a", "rout", "b", "hin")]
        horizon = 3
        workload = [
            {"a": {"rin": [Packet(), Packet()]}},
            {"a": {"rin": [Packet()]}},
            {},
        ]
        concrete = ConcreteNetwork(
            {k: prog(v) for k, v in (("a", RELAY), ("b", HALF))},
            connections,
        )
        concrete.run(horizon, workload)
        served = concrete.interpreter("b").buffer("hin").stats.dequeued_packets

        backend = NetworkBackend(
            programs, connections, steps=horizon, default_config=CONFIG
        )
        pins = []
        for av in backend.network.machine("a").arrival_vars:
            count = len(workload[av.step].get("a", {}).get(av.buffer, []))
            pins.append(mk_eq(av.present, mk_bool(av.slot < count)))
        mismatch = mk_not(
            mk_eq(backend.deq_count("b", "hin"), mk_int(served))
        )
        result = backend.find_trace(mismatch, extra_assumptions=pins)
        assert result.status is Status.UNSATISFIABLE

    def test_decoded_trace_keys_are_program_qualified(self):
        backend = NetworkBackend(
            {"a": prog(RELAY), "b": prog(HALF)},
            [Connection("a", "rout", "b", "hin")],
            steps=2,
            default_config=CONFIG,
        )
        result = backend.find_trace(
            mk_le(mk_int(1), backend.deq_count("a", "rin"))
        )
        assert result.status is Status.SATISFIED
        keys = {
            key
            for step in result.counterexample.arrivals
            for key in step
        }
        assert all(key.startswith("a.") for key in keys)
