"""Cross-module integration tests: the full pipelines at small scale."""

import pytest

from repro import (
    DafnyBackend,
    EncodeConfig,
    FPerfBackend,
    Interpreter,
    ModelChecker,
    Packet,
    SmtBackend,
    Status,
    check_program,
    parse_program,
    pretty_program,
)
from repro.analysis.traces import replay
from repro.backends.mc import MCStatus
from repro.smt.smtlib import parse_smtlib, to_smtlib
from repro.smt.terms import mk_and, mk_int, mk_le

CONFIG = EncodeConfig(buffer_capacity=4, arrivals_per_step=2)


class TestFullPipeline:
    """Source text → every artifact the framework can produce."""

    SRC = """\
    twoq(in buffer[2] ibs, out buffer ob){
      global int turn;
      monitor int served;
      local bool done; local int before;
      done = false;
      before = backlog-p(ob);
      for (k in 0..2) do {
        if (!done & backlog-p(ibs[turn]) > 0) {
          move-p(ibs[turn], ob, 1);
          done = true;
        }
        if (!done) { turn = turn + 1; if (turn == 2) { turn = 0; } }
      }
      if (done) { turn = turn + 1; if (turn == 2) { turn = 0; } }
      served = served + (backlog-p(ob) - before);
      assert(served >= 0);
    }
    """

    @pytest.fixture
    def checked(self):
        return check_program(parse_program(self.SRC))

    def test_parse_pretty_reparse(self, checked):
        reparsed = check_program(
            parse_program(pretty_program(checked.program))
        )
        assert reparsed.name == checked.name

    def test_interpret(self, checked):
        interp = Interpreter(checked)
        trace = interp.run([
            {"ibs[0]": [Packet(flow=0)], "ibs[1]": [Packet(flow=1)]},
            {}, {},
        ])
        assert trace.ok()
        flows = [p.flow for p in interp.buffer("ob").packets()]
        assert sorted(flows) == [0, 1]

    def test_smt_verify_and_replay(self, checked):
        backend = SmtBackend(checked, steps=3, config=CONFIG)
        assert backend.check_assertions().status is Status.PROVED
        result = backend.find_trace(
            mk_le(mk_int(2), backend.monitor("served"))
        )
        assert result.status is Status.SATISFIED
        assert replay(checked, result.counterexample,
                      backend=backend).consistent

    def test_dafny_and_mc_agree(self, checked):
        def conservation(view):
            return mk_and(*[
                (view.deq_p(l) + view.backlog_p(l)).eq(view.enq_p(l))
                for l in view.buffer_labels()
            ])

        dafny = DafnyBackend(checked, config=CONFIG)
        assert dafny.verify_modular(conservation).ok
        mc = ModelChecker(checked, config=CONFIG)
        assert mc.k_induction(conservation, k=1).status is MCStatus.PROVED

    def test_fperf_synthesis(self, checked):
        fperf = FPerfBackend(checked, steps=3, config=CONFIG)
        query = mk_le(mk_int(2), fperf.backend.deq_count("ibs[0]"))
        result = fperf.synthesize_by_generalization(query)
        assert result.ok

    def test_smtlib_export_reimports(self, checked):
        backend = SmtBackend(checked, steps=2, config=CONFIG)
        formulas = list(backend.machine.assumptions)
        formulas.extend(ob.formula for ob in backend.machine.obligations)
        text = to_smtlib(formulas, bounds=dict(backend.machine.bounds))
        script = parse_smtlib(text)
        assert len(script.assertions) >= len(formulas)


class TestMonitorHistoryAcrossBackends:
    """A monitor's per-step history must agree between the interpreter
    and the symbolic snapshots on a deterministic workload."""

    def test_monitor_history(self):
        src = """\
        acc(in buffer ib, out buffer ob){
          monitor int seen;
          seen = seen + backlog-p(ib);
          move-p(ib, ob, 1);
        }
        """
        checked = check_program(parse_program(src))
        workload = [{"ib": [Packet()]}, {"ib": [Packet(), Packet()]}, {}]
        interp = Interpreter(checked, buffer_capacity=4)
        trace = interp.run(workload)
        concrete = trace.monitor_series("seen")

        backend = SmtBackend(
            checked, steps=3,
            config=EncodeConfig(buffer_capacity=4, arrivals_per_step=2),
        )
        from repro.smt.terms import mk_bool, mk_eq, mk_not

        pins = []
        for av in backend.machine.arrival_vars:
            count = len(workload[av.step].get("ib", []))
            pins.append(mk_eq(av.present, mk_bool(av.slot < count)))
        for t, expected in enumerate(concrete):
            mismatch = mk_not(
                mk_eq(backend.monitor("seen", t), mk_int(expected))
            )
            result = backend.find_trace(mismatch, extra_assumptions=pins)
            assert result.status is Status.UNSATISFIABLE
