"""Tests for the Dafny-style annotation-checker back end."""

import pytest

from repro.backends.dafny import DafnyBackend, StateView, VCStatus
from repro.compiler.symexec import EncodeConfig
from repro.lang.checker import check_program
from repro.lang.parser import parse_program
from repro.netmodels.schedulers import round_robin, strict_priority
from repro.smt.terms import mk_and, mk_int, mk_le

CONFIG = EncodeConfig(buffer_capacity=4, arrivals_per_step=2)


def conservation(view: StateView):
    return mk_and(*[
        (view.deq_p(label) + view.backlog_p(label)).eq(view.enq_p(label))
        for label in view.buffer_labels()
    ])


def bogus_invariant(view: StateView):
    # Claims the output buffer never holds more than one packet — false.
    return mk_le(view.backlog_p("ob"), mk_int(1))


class TestMonolithic:
    def test_valid_query_verifies(self):
        dafny = DafnyBackend(strict_priority(2), config=CONFIG)
        report = dafny.verify_monolithic(
            3, queries=[("conservation", conservation)]
        )
        assert report.ok
        assert len(report.vcs) == 1

    def test_invalid_query_fails(self):
        dafny = DafnyBackend(strict_priority(2), config=CONFIG)
        report = dafny.verify_monolithic(3, queries=[("bogus", bogus_invariant)])
        assert not report.ok
        assert report.failed()[0].status is VCStatus.FAILED

    def test_in_program_asserts_become_vcs(self):
        src = """\
        p(in buffer ib, out buffer ob){
          monitor int steps;
          steps = steps + 1;
          assert(steps <= 2);
          move-p(ib, ob, 1);
        }
        """
        checked = check_program(parse_program(src))
        dafny = DafnyBackend(checked, config=CONFIG)
        ok_report = dafny.verify_monolithic(2)
        assert ok_report.ok and len(ok_report.vcs) == 2
        bad_report = dafny.verify_monolithic(3)
        assert not bad_report.ok  # the step-3 instance fails

    def test_vc_growth_with_horizon(self):
        """Monolithic VCs grow with the unrolling depth (Figure 6's cause)."""
        dafny = DafnyBackend(round_robin(2), config=CONFIG)
        small = dafny.verify_monolithic(1, queries=[("c", conservation)])
        large = dafny.verify_monolithic(4, queries=[("c", conservation)])
        assert large.vcs[0].cnf_clauses > small.vcs[0].cnf_clauses


class TestModular:
    def test_inductive_invariant_verifies(self):
        dafny = DafnyBackend(strict_priority(2), config=CONFIG)
        report = dafny.verify_modular(
            conservation, queries=[("deq_le_enq", lambda v: mk_and(*[
                mk_le(v.deq_p(l), v.enq_p(l)) for l in v.buffer_labels()
            ]))]
        )
        assert report.ok
        assert [vc.name for vc in report.vcs] == [
            "init", "preserve", "query:deq_le_enq",
        ]

    def test_non_inductive_invariant_fails_preserve(self):
        dafny = DafnyBackend(strict_priority(2), config=CONFIG)
        report = dafny.verify_modular(bogus_invariant)
        failed_names = [vc.name for vc in report.failed()]
        assert "preserve" in failed_names

    def test_modular_time_is_horizon_independent(self):
        """The modular VCs never mention a horizon at all — the check is
        the same regardless of how long we'd run the system."""
        dafny = DafnyBackend(strict_priority(2), config=CONFIG)
        report = dafny.verify_modular(conservation)
        assert report.ok
        # Three VCs max (init/preserve/queries): no per-step VCs.
        assert len(report.vcs) == 2


class TestProcedureContracts:
    SRC = """\
    p(in buffer ib, out buffer ob){
      def send_some(buffer src, buffer dst, int n)
        requires n >= 0;
        ensures backlog-p(src) >= 0;
      {
        move-p(src, dst, n);
      }
      send_some(ib, ob, 1);
    }
    """

    def test_contract_verifies(self):
        checked = check_program(parse_program(self.SRC))
        dafny = DafnyBackend(checked, config=CONFIG)
        report = dafny.verify_procedure("send_some")
        assert report.ok

    def test_bad_contract_fails(self):
        src = self.SRC.replace(
            "ensures backlog-p(src) >= 0;",
            "ensures backlog-p(src) == 0;",
        )
        checked = check_program(parse_program(src))
        dafny = DafnyBackend(checked, config=CONFIG)
        report = dafny.verify_procedure("send_some")
        assert not report.ok

    def test_unknown_procedure(self):
        checked = check_program(parse_program(self.SRC))
        with pytest.raises(KeyError):
            DafnyBackend(checked, config=CONFIG).verify_procedure("nope")
