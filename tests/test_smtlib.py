"""Tests for SMT-LIB v2 printing and parsing."""

import pytest

from repro.smt.smtlib import (
    SmtLibParseError,
    parse_smtlib,
    term_to_smtlib,
    to_smtlib,
)
from repro.smt.terms import (
    evaluate,
    free_vars,
    mk_and,
    mk_bool_var,
    mk_eq,
    mk_implies,
    mk_int,
    mk_int_var,
    mk_ite,
    mk_le,
    mk_lt,
    mk_mul,
    mk_neg,
    mk_not,
    mk_or,
    mk_sub,
    mk_var,
    mk_xor,
)
from repro.smt.sorts import INT


def roundtrip(term):
    text = to_smtlib([term])
    script = parse_smtlib(text)
    assert len(script.assertions) == 1
    return script.assertions[0]


def assert_equivalent(a, b, domain=range(-3, 4)):
    names = {v.name: v for v in free_vars(a)}
    names.update({v.name: v for v in free_vars(b)})
    import itertools

    int_names = [n for n, v in names.items() if v.sort is INT]
    bool_names = [n for n, v in names.items() if v.sort is not INT]
    for ints in itertools.product(domain, repeat=len(int_names)):
        for bools in itertools.product((False, True), repeat=len(bool_names)):
            env = dict(zip(int_names, ints))
            env.update(dict(zip(bool_names, bools)))
            assert evaluate(a, env) == evaluate(b, env)


class TestPrinter:
    def test_atoms(self):
        assert term_to_smtlib(mk_int(5)) == "5"
        assert term_to_smtlib(mk_int(-5)) == "(- 5)"
        assert term_to_smtlib(mk_bool_var("p")) == "p"

    def test_odd_names_quoted(self):
        v = mk_int_var("weird name.t0")
        assert term_to_smtlib(v).startswith("|")

    def test_shared_subterms_use_let(self):
        x = mk_int_var("x")
        shared = x + mk_int(1)
        term = mk_eq(mk_mul(shared, shared), mk_int(4))
        text = term_to_smtlib(term)
        assert "let" in text
        assert text.count("(+ x 1)") == 1

    def test_large_shared_dag_is_linear(self):
        # A tower of squarings is exponential as a tree but linear with lets.
        x = mk_int_var("x")
        term = x
        for _ in range(40):
            term = mk_mul(term, term)
        text = term_to_smtlib(mk_lt(term, mk_int(1)))
        assert len(text) < 10_000

    def test_script_shape(self):
        x = mk_int_var("sx")
        text = to_smtlib([mk_lt(x, mk_int(3))], bounds={"sx": (0, 5)})
        assert text.startswith("(set-logic")
        assert "(declare-const sx Int)" in text
        assert "(check-sat)" in text
        assert "(assert (<= 0 sx))" in text


class TestRoundTrip:
    def test_arith(self):
        x, y = mk_int_var("x"), mk_int_var("y")
        term = mk_lt(mk_sub(mk_mul(x, y), mk_neg(x)), mk_int(7))
        assert_equivalent(term, roundtrip(term))

    def test_boolean(self):
        p, q = mk_bool_var("p"), mk_bool_var("q")
        term = mk_and(mk_or(p, mk_not(q)), mk_xor(p, q), mk_implies(q, p))
        assert_equivalent(term, roundtrip(term))

    def test_ite(self):
        x = mk_int_var("x")
        p = mk_bool_var("p")
        term = mk_eq(mk_ite(p, x, mk_neg(x)), mk_int(2))
        assert_equivalent(term, roundtrip(term))

    def test_with_sharing(self):
        x = mk_int_var("x")
        shared = x + mk_int(2)
        term = mk_le(mk_mul(shared, shared), shared + mk_int(10))
        assert_equivalent(term, roundtrip(term))


class TestParser:
    def test_declare_fun(self):
        script = parse_smtlib(
            "(declare-fun a () Int)(assert (< a 3))(check-sat)"
        )
        assert "a" in script.declarations
        assert script.has_check_sat

    def test_comments_ignored(self):
        script = parse_smtlib("; hi\n(set-logic QF_LIA)\n")
        assert script.logic == "QF_LIA"

    def test_chained_comparison_operators(self):
        script = parse_smtlib(
            "(declare-const a Int)(assert (>= a 2))(assert (> 3 a))"
        )
        assert evaluate(script.assertions[0], {"a": 2}) is True
        assert evaluate(script.assertions[1], {"a": 2}) is True
        assert evaluate(script.assertions[1], {"a": 3}) is False

    def test_undeclared_symbol(self):
        with pytest.raises(SmtLibParseError):
            parse_smtlib("(assert (< b 3))")

    def test_unbalanced_parens(self):
        with pytest.raises(SmtLibParseError):
            parse_smtlib("(assert (< 1 2)")

    def test_unsupported_command(self):
        with pytest.raises(SmtLibParseError):
            parse_smtlib("(maximize x)")

    def test_unsupported_sort(self):
        with pytest.raises(SmtLibParseError):
            parse_smtlib("(declare-const r Real)")

    def test_minus_variants(self):
        script = parse_smtlib(
            "(declare-const a Int)(assert (= (- a) (- 0 a)))"
        )
        assert evaluate(script.assertions[0], {"a": 4}) is True
