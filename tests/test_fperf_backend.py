"""Tests for the FPerf-style workload-synthesis back end."""

import pytest

from repro.analysis.workloads import (
    BurstGE,
    BurstLE,
    RateGE,
    RateLE,
    Workload,
    exact_characterization,
)
from repro.backends.fperf import FPerfBackend
from repro.buffers.packets import Packet
from repro.compiler.symexec import EncodeConfig
from repro.netmodels.schedulers import fq_buggy, strict_priority
from repro.smt.terms import mk_int, mk_le

CONFIG = EncodeConfig(buffer_capacity=5, arrivals_per_step=2)


def wl(*counts_per_step):
    """Workload shorthand: counts_per_step[t] = {label: count}."""
    out = []
    for step in counts_per_step:
        out.append({
            label: [Packet() for _ in range(count)]
            for label, count in step.items()
        })
    return out


class TestAtoms:
    def test_rate_ge(self):
        atom = RateGE("a", 1, start=1)
        assert atom.holds(wl({"a": 0}, {"a": 1}, {"a": 2}))
        assert not atom.holds(wl({"a": 1}, {"a": 0}))

    def test_rate_le(self):
        atom = RateLE("a", 1)
        assert atom.holds(wl({"a": 1}, {"a": 0}))
        assert not atom.holds(wl({"a": 2}))

    def test_burst(self):
        assert BurstGE("a", 1, 2).holds(wl({}, {"a": 2}))
        assert not BurstGE("a", 1, 2).holds(wl({}, {"a": 1}))
        assert BurstLE("a", 0, 1).holds(wl({"a": 1}))
        assert BurstLE("a", 5, 1).holds(wl({"a": 1}))  # beyond horizon

    def test_workload_conjunction(self):
        workload = Workload((RateGE("a", 1), BurstLE("a", 0, 1)))
        assert workload.holds(wl({"a": 1}, {"a": 2}))
        assert not workload.holds(wl({"a": 2}, {"a": 2}))
        assert "AND" in str(workload)

    def test_exact_characterization(self):
        trace = wl({"a": 2}, {"a": 0})
        workload = exact_characterization(trace, ["a"])
        assert workload.holds(trace)
        assert not workload.holds(wl({"a": 1}, {"a": 0}))
        assert not workload.holds(wl({"a": 2}, {"a": 1}))


class TestAtomEncodingAgreesWithConcrete:
    """An atom's SMT encoding and its concrete check must agree."""

    @pytest.mark.parametrize("atom", [
        RateGE("ibs[0]", 1), RateLE("ibs[0]", 1, start=1),
        BurstGE("ibs[1]", 0, 2), BurstLE("ibs[1]", 1, 0),
    ])
    def test_atom_agreement(self, atom):
        from repro.backends.smt_backend import SmtBackend, Status

        backend = SmtBackend(strict_priority(2), steps=3, config=CONFIG)
        encoded = atom.encode(backend.machine, 3)
        result = backend.find_trace(encoded)
        assert result.status is Status.SATISFIED
        assert atom.holds(result.counterexample.workload())


class TestGeneralization:
    def test_synthesizes_for_reachable_query(self):
        fperf = FPerfBackend(strict_priority(2), steps=3, config=CONFIG)
        query = mk_le(mk_int(2), fperf.backend.deq_count("ibs[0]"))
        result = fperf.synthesize_by_generalization(query)
        assert result.ok
        assert len(result.workload) >= 1
        # Every synthesized workload must be feasible and sufficient.
        stats_before = result.stats.solver_calls
        assert fperf._feasible(result.workload, result.stats)
        ok, _ = fperf._sufficient(result.workload, query, result.stats)
        assert ok
        assert result.stats.solver_calls > stats_before

    def test_unreachable_query_returns_none(self):
        fperf = FPerfBackend(strict_priority(2), steps=3, config=CONFIG)
        query = mk_le(mk_int(99), fperf.backend.deq_count("ibs[0]"))
        result = fperf.synthesize_by_generalization(query)
        assert not result.ok
        assert result.witness is None

    def test_fq_starvation_workload(self):
        from repro.analysis.queries import starvation

        fperf = FPerfBackend(fq_buggy(2), steps=5, config=CONFIG)
        query = starvation(fperf.backend, "ibs[0]", max_service=1)
        result = fperf.synthesize_by_generalization(query)
        assert result.ok
        text = str(result.workload)
        # The paced-competitor condition must be part of the workload.
        assert "ibs[1]" in text


class TestEnumeration:
    def test_single_atom_synthesis(self):
        fperf = FPerfBackend(strict_priority(2), steps=3, config=CONFIG)
        # "queue 1 never dequeues anything": guaranteed whenever queue 1
        # receives nothing.
        query = fperf.backend.deq_count("ibs[1]").eq(mk_int(0))
        result = fperf.synthesize_by_enumeration(query, max_atoms=1)
        assert result.ok
        assert result.stats.candidates_tried >= 1

    def test_example_pruning_kicks_in(self):
        fperf = FPerfBackend(strict_priority(2), steps=3, config=CONFIG)
        query = fperf.backend.deq_count("ibs[1]").eq(mk_int(0))
        result = fperf.synthesize_by_enumeration(query, max_atoms=1)
        assert result.stats.pruned_by_examples > 0

    def test_grammar_size(self):
        fperf = FPerfBackend(strict_priority(2), steps=3, config=CONFIG)
        grammar = fperf.atom_grammar()
        kinds = {type(a).__name__ for a in grammar}
        assert kinds == {"RateGE", "RateLE", "BurstGE", "BurstLE"}
        labels = {a.label for a in grammar}
        assert labels == {"ibs[0]", "ibs[1]"}
